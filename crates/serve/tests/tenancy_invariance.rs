//! End-to-end property test of the engine's tenancy-invariance contract:
//! a session's wire output is a pure function of
//! `(seed, session_id, policy, censor)` — never of which other tenants
//! share the process, how sessions are packed into shards or batches, or
//! the order tenants were registered in.
//!
//! Each case builds one multi-tenant engine (random flows spread across
//! 2 policies × 3 censors), runs it at a random shard count (1 or 4),
//! batch size (1 or 64), pipelining on/off and work-stealing on/off, and
//! asserts every session is bit-identical to a
//! fresh single-tenant engine run carrying only that session's
//! `(id, flow)` under its `(policy, censor)` pair — and that re-running
//! the same multi-tenant mix on the [`SimdBackend`] reproduces the
//! [`CpuBackend`] run byte for byte (backend choice is a pure throughput
//! knob, like sharding and batching).

mod common;

use common::{scoring_censor as censor, tiny_policy};
use proptest::prelude::*;

use amoeba_serve::{ActionMode, BackendKind, ServeConfig, ServeEngine};
use amoeba_traffic::{Layer, NetEm};

fn config(
    seed: u64,
    batch: usize,
    shards: usize,
    pipeline: bool,
    steal: bool,
    netem: Option<NetEm>,
    backend: BackendKind,
) -> ServeConfig {
    ServeConfig::builder(Layer::Tcp)
        .seed(seed)
        .batch(batch)
        .shards(shards)
        .pipeline(pipeline)
        .steal(steal)
        .mode(ActionMode::Sample)
        .netem(netem)
        .backend(backend)
        .build()
}

use common::arb_flow;

const CENSOR_SCORES: [f32; 3] = [0.1, 0.45, 0.9];

proptest! {
    // Each case runs one multi-tenant engine plus one single-tenant
    // engine per session; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random flows across 2 policies × 3 censors, shards 1/4, batch
    /// 1/64: every session bit-identical to its solo single-tenant run.
    #[test]
    fn co_tenants_never_change_a_sessions_wire_output(
        flows in prop::collection::vec(arb_flow(), 6..18),
        seed in any::<u64>(),
        four_shards in any::<bool>(),
        big_batch in any::<bool>(),
        pipeline in any::<bool>(),
        steal in any::<bool>(),
        with_netem in any::<bool>(),
        // Random tenant assignment per session.
        assignment in prop::collection::vec((0usize..2, 0usize..3), 18),
    ) {
        let netem = with_netem.then_some(NetEm {
            drop_rate: 0.08,
            retransmit_timeout_ms: 50.0,
            jitter_std: 0.2,
        });
        let shards = if four_shards { 4 } else { 1 };
        let batch = if big_batch { 64 } else { 1 };
        let policies = [tiny_policy(7), tiny_policy(19)];

        let run_mix = |backend: BackendKind| {
            let mut engine =
                ServeEngine::new(config(seed, batch, shards, pipeline, steal, netem, backend));
            let pids: Vec<_> = policies
                .iter()
                .map(|p| engine.register_policy(p.clone()))
                .collect();
            let cids: Vec<_> = CENSOR_SCORES
                .iter()
                .map(|&s| engine.register_censor(censor(s)))
                .collect();
            for (i, f) in flows.iter().enumerate() {
                let (p, c) = assignment[i];
                engine.admit(f).id(i).policy(pids[p]).censor(cids[c]).submit();
            }
            engine.run()
        };
        let multi = run_mix(BackendKind::Cpu);
        prop_assert_eq!(multi.outcomes.len(), flows.len());
        let multi_bits = multi.wire_bits();

        // The same random tenant mix on the SIMD backend: byte-identical
        // wire and verdicts (backend choice is a pure throughput knob).
        let simd = run_mix(BackendKind::Simd);
        prop_assert_eq!(&multi_bits, &simd.wire_bits(), "SimdBackend diverged from CpuBackend");
        for (a, b) in multi.outcomes.iter().zip(&simd.outcomes) {
            prop_assert_eq!(a.final_score.to_bits(), b.final_score.to_bits());
            prop_assert_eq!(a.evaded, b.evaded);
        }

        for (i, f) in flows.iter().enumerate() {
            let (p, c) = assignment[i];
            let mut solo =
                ServeEngine::new(config(seed, 1, 1, false, false, netem, BackendKind::Cpu));
            let pid = solo.register_policy(policies[p].clone());
            let cid = solo.register_censor(censor(CENSOR_SCORES[c]));
            solo.admit(f).id(i).policy(pid).censor(cid).submit();
            let solo = solo.run();
            prop_assert_eq!(
                &multi_bits[i],
                &solo.wire_bits()[0],
                "session {} (policy {}, censor {}) diverged from its solo run \
                 at {} shards x batch {}",
                i, p, c, shards, batch
            );
            prop_assert_eq!(
                multi.outcomes[i].final_score,
                solo.outcomes[0].final_score,
                "session {} verdict diverged", i
            );
        }
    }
}
