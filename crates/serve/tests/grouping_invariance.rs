//! End-to-end property test of the dataplane's grouping-invariance
//! contract: for random offered flows, a fixed seed must produce
//! bit-identical per-session wire output no matter how sessions are
//! grouped — any shard count in `1..=8`, batch size 1 or 64, sampled
//! actions, NetEm impairment on or off, and telemetry/trace-ring
//! settings varied (observability must never perturb the wire).
//!
//! Runs through the deprecated one-tenant [`Dataplane`] shim on purpose:
//! it doubles as the regression net that the shim delegates to the
//! engine faithfully. The multi-tenant variant of this property lives in
//! `tenancy_invariance.rs`.

#![allow(deprecated)]

mod common;

use common::{arb_flow, scoring_censor, tiny_policy};
use proptest::prelude::*;

use amoeba_serve::{ActionMode, Dataplane, ServeConfig, ServeReport};
use amoeba_traffic::{Flow, Layer, NetEm};

#[allow(clippy::too_many_arguments)]
fn run(
    flows: &[Flow],
    seed: u64,
    batch: usize,
    shards: usize,
    pipeline: bool,
    steal: bool,
    netem: Option<NetEm>,
    telemetry: bool,
    trace_ring: usize,
) -> ServeReport {
    let mut cfg = ServeConfig::new(Layer::Tcp)
        .with_seed(seed)
        .with_batch(batch)
        .with_shards(shards)
        .with_pipeline(pipeline)
        .with_steal(steal)
        .with_telemetry(telemetry)
        .with_trace_ring(trace_ring)
        .with_mode(ActionMode::Sample);
    cfg.netem = netem;
    let mut dp = Dataplane::new(tiny_policy(7), scoring_censor(0.1), cfg);
    dp.add_flows(flows.iter());
    dp.run()
}

/// The per-session wire frame stream, down to the bit.
fn wire_bits(report: &ServeReport) -> Vec<Vec<(i32, u32)>> {
    report.wire_bits()
}

proptest! {
    // Each case runs the full dataplane three times; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random flows, random shard count, random pipelining/stealing,
    /// batch 1 vs 64: identical `ServeReport` frame streams. The
    /// reference run is always the inline scheduler (pipeline and
    /// stealing off) at batch 1 × 1 shard.
    #[test]
    fn shard_count_and_batch_size_never_change_wire_output(
        flows in prop::collection::vec(arb_flow(), 4..24),
        seed in any::<u64>(),
        n_shards in 1usize..=8,
        pipeline in any::<bool>(),
        steal in any::<bool>(),
        with_netem in any::<bool>(),
        telemetry in any::<bool>(),
        ring_pick in 0usize..3,
    ) {
        let netem = with_netem.then_some(NetEm {
            drop_rate: 0.08,
            retransmit_timeout_ms: 50.0,
            jitter_std: 0.2,
        });
        let trace_ring = [0usize, 8, 256][ring_pick];
        // Reference run: telemetry off entirely — the sharded runs vary
        // the telemetry/trace knobs to prove observability never leaks
        // into the wire.
        let reference = run(&flows, seed, 1, 1, false, false, netem, false, 0);
        prop_assert_eq!(reference.outcomes.len(), flows.len());
        let ref_bits = wire_bits(&reference);
        for batch in [1usize, 64] {
            let sharded = run(
                &flows, seed, batch, n_shards, pipeline, steal, netem, telemetry, trace_ring,
            );
            prop_assert_eq!(sharded.frames, reference.frames);
            prop_assert_eq!(
                wire_bits(&sharded),
                ref_bits.clone(),
                "{} shards x batch {} (pipeline {}, steal {}) diverged",
                n_shards,
                batch,
                pipeline,
                steal
            );
        }
    }
}
