//! End-to-end property test of the dataplane's grouping-invariance
//! contract: for random offered flows, a fixed seed must produce
//! bit-identical per-session wire output no matter how sessions are
//! grouped — any shard count in `1..=8`, batch size 1 or 64, sampled
//! actions, and NetEm impairment on or off.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use amoeba_classifiers::{Censor, CensorKind, ConstantCensor};
use amoeba_core::encoder::StateEncoder;
use amoeba_core::policy::Actor;
use amoeba_core::AmoebaConfig;
use amoeba_serve::{ActionMode, Dataplane, FrozenPolicy, ServeConfig, ServeReport};
use amoeba_traffic::{Flow, Layer, NetEm};

fn tiny_policy() -> FrozenPolicy {
    let mut rng = StdRng::seed_from_u64(7);
    let encoder = StateEncoder::new(12, 2, &mut rng);
    let cfg = AmoebaConfig {
        encoder_hidden: 12,
        actor_hidden: vec![24],
        ..AmoebaConfig::fast()
    };
    let actor = Actor::new(&cfg, &mut rng);
    FrozenPolicy::new(encoder.snapshot(), actor.snapshot())
}

fn run(
    flows: &[Flow],
    seed: u64,
    batch: usize,
    shards: usize,
    netem: Option<NetEm>,
) -> ServeReport {
    let censor: Arc<dyn Censor> = Arc::new(ConstantCensor {
        fixed_score: 0.1,
        as_kind: CensorKind::Dt,
    });
    let mut cfg = ServeConfig::new(Layer::Tcp)
        .with_seed(seed)
        .with_batch(batch)
        .with_shards(shards)
        .with_mode(ActionMode::Sample);
    cfg.netem = netem;
    let mut dp = Dataplane::new(tiny_policy(), censor, cfg);
    dp.add_flows(flows.iter());
    dp.run()
}

/// The per-session wire frame stream, down to the bit.
fn wire_bits(report: &ServeReport) -> Vec<Vec<(i32, u32)>> {
    report.wire_bits()
}

/// One random offered flow: a few packets with random sizes, signs and
/// inter-packet delays.
fn arb_flow() -> impl Strategy<Value = Flow> {
    prop::collection::vec((40i32..1400, 0u8..2, 0u32..8000), 1..6).prop_map(|pkts| {
        Flow::from_pairs(
            &pkts
                .iter()
                .enumerate()
                .map(|(i, &(size, sign, delay_us))| {
                    let signed = if sign == 0 { size } else { -size };
                    let delay = if i == 0 { 0.0 } else { delay_us as f32 / 1e3 };
                    (signed, delay)
                })
                .collect::<Vec<_>>(),
        )
    })
}

proptest! {
    // Each case runs the full dataplane three times; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random flows, random shard count, batch 1 vs 64: identical
    /// `ServeReport` frame streams.
    #[test]
    fn shard_count_and_batch_size_never_change_wire_output(
        flows in prop::collection::vec(arb_flow(), 4..24),
        seed in any::<u64>(),
        n_shards in 1usize..=8,
        with_netem in any::<bool>(),
    ) {
        let netem = with_netem.then_some(NetEm {
            drop_rate: 0.08,
            retransmit_timeout_ms: 50.0,
            jitter_std: 0.2,
        });
        let reference = run(&flows, seed, 1, 1, netem);
        prop_assert_eq!(reference.outcomes.len(), flows.len());
        let ref_bits = wire_bits(&reference);
        for batch in [1usize, 64] {
            let sharded = run(&flows, seed, batch, n_shards, netem);
            prop_assert_eq!(sharded.frames, reference.frames);
            prop_assert_eq!(
                wire_bits(&sharded),
                ref_bits.clone(),
                "{} shards x batch {} diverged",
                n_shards,
                batch
            );
        }
    }
}
