//! The telemetry contract, end to end: observability is a pure
//! *read-side* feature. Toggling counters, histograms, the trace ring,
//! or exact per-frame stats must never change the wire output or the
//! deterministic report fields — only whether a [`TelemetrySnapshot`]
//! rides along. The second half checks the accuracy side of the
//! bargain: log-linear histogram percentiles track the exact
//! per-frame vectors within one bucket (relative error ≤ 1/16).
//!
//! [`TelemetrySnapshot`]: amoeba_telemetry::TelemetrySnapshot

#![allow(deprecated)]

mod common;

use common::{arb_flow, scoring_censor, tiny_policy};
use proptest::prelude::*;

use amoeba_serve::{ActionMode, Dataplane, ServeConfig, ServeReport};
use amoeba_traffic::{Flow, Layer};

#[allow(clippy::too_many_arguments)]
fn run(
    flows: &[Flow],
    seed: u64,
    shards: usize,
    pipeline: bool,
    steal: bool,
    telemetry: bool,
    trace_ring: usize,
    exact: bool,
) -> ServeReport {
    let cfg = ServeConfig::new(Layer::Tcp)
        .with_seed(seed)
        .with_batch(8)
        .with_shards(shards)
        .with_pipeline(pipeline)
        .with_steal(steal)
        .with_telemetry(telemetry)
        .with_trace_ring(trace_ring)
        .with_exact_frame_stats(exact)
        .with_mode(ActionMode::Sample);
    let mut dp = Dataplane::new(tiny_policy(7), scoring_censor(0.1), cfg);
    dp.add_flows(flows.iter());
    dp.run()
}

/// Everything in a report that is a deterministic function of
/// `(seed, flows, policy, censor)` — the fields the telemetry knobs
/// must not move. Steal counts and wall-clock stats are excluded by
/// construction (they are timing-dependent even between identical
/// configs).
fn deterministic_view(r: &ServeReport) -> (usize, Vec<(bool, bool, u32, usize)>) {
    (
        r.frames,
        r.outcomes
            .iter()
            .map(|o| {
                (
                    o.evaded,
                    o.blocked_midstream,
                    o.final_score.to_bits(),
                    o.frames,
                )
            })
            .collect(),
    )
}

proptest! {
    // Each case performs eight full dataplane runs; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random flows and random scheduler knobs, the wire bits and
    /// deterministic report fields are identical with telemetry off,
    /// on, on with a tiny trace ring, and on with exact frame stats —
    /// and the snapshot is attached exactly when telemetry is on.
    #[test]
    fn telemetry_knobs_never_change_wire_or_report(
        flows in prop::collection::vec(arb_flow(), 4..16),
        seed in any::<u64>(),
        pipeline in any::<bool>(),
        steal in any::<bool>(),
    ) {
        for shards in [1usize, 4] {
            let off = run(&flows, seed, shards, pipeline, steal, false, 0, false);
            prop_assert!(off.telemetry.is_none(), "telemetry off must omit the snapshot");
            let ref_bits = off.wire_bits();
            let ref_view = deterministic_view(&off);
            // (telemetry, trace_ring, exact_frame_stats) variants.
            for (tel, ring, exact) in [(true, 0, false), (true, 8, false), (true, 4096, true)] {
                let on = run(&flows, seed, shards, pipeline, steal, tel, ring, exact);
                prop_assert_eq!(
                    on.wire_bits(),
                    ref_bits.clone(),
                    "telemetry={} ring={} exact={} x {} shards perturbed the wire",
                    tel, ring, exact, shards
                );
                prop_assert_eq!(deterministic_view(&on), ref_view.clone());
                let snap = on.telemetry.as_ref().expect("telemetry on must attach a snapshot");
                prop_assert_eq!(snap.counters.frames as usize, on.frames);
                prop_assert_eq!(snap.counters.sessions as usize, on.outcomes.len());
            }
        }
    }
}

/// Histogram percentiles vs the exact per-frame vectors they summarise:
/// both paths now use the type-7 (linear interpolation) estimator — the
/// histogram over bucket-midpoint rank values, the report over the exact
/// samples — so the histogram quantile must land within one log-linear
/// bucket (relative error ≤ 1/16) of the exact type-7 value. This is
/// what keeps `ServeReport`'s exact→histogram fallback from shifting a
/// reported p50 when `exact_frame_stats` flips. Referenced by name from
/// the fallback documentation in `metrics.rs`.
#[test]
fn histogram_percentiles_track_exact_ones() {
    // Deterministic flows with a spread of sizes and delays so the
    // queue/compute distributions cover several histogram decades.
    let flows: Vec<Flow> = (0..48)
        .map(|i| {
            let n = 1 + (i % 5);
            let pairs: Vec<(i32, f32)> = (0..n)
                .map(|p| {
                    let size = 60 + 23 * ((i * 7 + p * 3) % 50);
                    let signed = if (i + p) % 3 == 0 { -size } else { size };
                    (signed, if p == 0 { 0.0 } else { 0.4 })
                })
                .collect();
            Flow::from_pairs(&pairs)
        })
        .collect();
    let report = run(&flows, 42, 2, true, true, true, 0, true);
    let snap = report.telemetry.as_ref().expect("telemetry snapshot");

    for (name, exact, hist) in [
        ("queue", &report.frame_queue_us, &snap.queue_hist),
        ("compute", &report.frame_compute_us, &snap.compute_hist),
    ] {
        assert_eq!(hist.count(), exact.len() as u64, "{name} sample count");
        let mut sorted = exact.clone();
        sorted.sort_by(f32::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            // Exact type-7 value, as `ServeReport::percentiles_of`
            // computes it over the raw samples.
            let rank = q * (sorted.len() - 1) as f64;
            let lo = sorted[rank.floor() as usize] as f64;
            let hi = sorted[rank.ceil() as usize] as f64;
            let want = lo + (hi - lo) * rank.fract();
            let got = hist.quantile_us(q);
            // One log-linear bucket of slack (on the larger interpolation
            // endpoint) plus 1µs for the f32→ns round-trip near zero.
            assert!(
                (got - want).abs() <= hi / 16.0 + 1.0,
                "{name} q={q}: hist {got} vs exact {want}"
            );
        }
    }
}
