//! Shared fixtures for the serve crate's integration tests (the
//! grouping- and tenancy-invariance property suites): one definition of
//! the tiny frozen policy, the constant-score censor and the random-flow
//! strategy. (Unit tests inside `src/` use `crate::testutil` instead —
//! `#[cfg(test)]` items are invisible from here.)

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use amoeba_classifiers::{Censor, CensorKind, ConstantCensor};
use amoeba_core::encoder::StateEncoder;
use amoeba_core::policy::Actor;
use amoeba_core::AmoebaConfig;
use amoeba_serve::FrozenPolicy;
use amoeba_traffic::Flow;

/// A small randomly initialised frozen policy (12-hidden encoder, one
/// 24-wide actor layer); distinct seeds give distinct weights.
pub fn tiny_policy(seed: u64) -> FrozenPolicy {
    let mut rng = StdRng::seed_from_u64(seed);
    let encoder = StateEncoder::new(12, 2, &mut rng);
    let cfg = AmoebaConfig {
        encoder_hidden: 12,
        actor_hidden: vec![24],
        ..AmoebaConfig::fast()
    };
    let actor = Actor::new(&cfg, &mut rng);
    FrozenPolicy::new(encoder.snapshot(), actor.snapshot())
}

/// A censor that scores every flow with the given constant.
pub fn scoring_censor(score: f32) -> Arc<dyn Censor> {
    Arc::new(ConstantCensor {
        fixed_score: score,
        as_kind: CensorKind::Dt,
    })
}

/// One random offered flow: a few packets with random sizes, signs and
/// inter-packet delays.
pub fn arb_flow() -> impl Strategy<Value = Flow> {
    prop::collection::vec((40i32..1400, 0u8..2, 0u32..8000), 1..6).prop_map(|pkts| {
        Flow::from_pairs(
            &pkts
                .iter()
                .enumerate()
                .map(|(i, &(size, sign, delay_us))| {
                    let signed = if sign == 0 { size } else { -size };
                    let delay = if i == 0 { 0.0 } else { delay_us as f32 / 1e3 };
                    (signed, delay)
                })
                .collect::<Vec<_>>(),
        )
    })
}
