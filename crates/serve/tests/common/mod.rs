//! Shared fixtures for the serve crate's integration tests: the
//! library's `amoeba_serve::testutil` fixtures re-exported (one
//! definition of the tiny frozen policy and the constant-score censor,
//! shared with the unit tests and the conformance suite), plus the
//! random-flow proptest strategy — proptest is a dev-dependency, so
//! strategies live here rather than in the library module.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(unused)]

pub use amoeba_serve::testutil::{scoring_censor, tiny_policy};

use amoeba_traffic::Flow;
use proptest::prelude::*;

/// One random offered flow: a few packets with random sizes, signs and
/// inter-packet delays.
pub fn arb_flow() -> impl Strategy<Value = Flow> {
    prop::collection::vec((40i32..1400, 0u8..2, 0u32..8000), 1..6).prop_map(|pkts| {
        Flow::from_pairs(
            &pkts
                .iter()
                .enumerate()
                .map(|(i, &(size, sign, delay_us))| {
                    let signed = if sign == 0 { size } else { -size };
                    let delay = if i == 0 { 0.0 } else { delay_us as f32 / 1e3 };
                    (signed, delay)
                })
                .collect::<Vec<_>>(),
        )
    })
}
