//! Work-stealing under a pathologically skewed tenant mix: one policy
//! owns ~90% of the sessions, so with round-robin-by-id partitioning the
//! shards whose slots lean on the heavy policy form far larger chunks
//! and the steal path actually fires. The property pinned here is the
//! engine's invariance contract at its most load-imbalanced: wire output
//! is bit-identical across steal on/off × shards 1/4 × batch 1/64, with
//! the inline (steal-off, pipeline-off, batch-1, single-shard) run as
//! the reference.
//!
//! The balanced-mix variants of this property live in
//! `grouping_invariance.rs` and `tenancy_invariance.rs`.

mod common;

use common::{arb_flow, scoring_censor, tiny_policy};
use proptest::prelude::*;

use amoeba_serve::{ActionMode, ServeConfig, ServeEngine, ServeReport};
use amoeba_traffic::{Flow, Layer, NetEm};

/// Runs the skewed mix: session `i` goes to the heavy policy unless
/// `i % 10 == 9` (a 90/10 split), censors alternate.
fn run_skewed(
    flows: &[Flow],
    seed: u64,
    batch: usize,
    shards: usize,
    pipeline: bool,
    steal: bool,
    netem: Option<NetEm>,
) -> ServeReport {
    let cfg = ServeConfig::builder(Layer::Tcp)
        .seed(seed)
        .batch(batch)
        .shards(shards)
        .pipeline(pipeline)
        .steal(steal)
        .mode(ActionMode::Sample)
        .netem(netem)
        .build();
    let mut engine = ServeEngine::new(cfg);
    let heavy = engine.register_policy(tiny_policy(7));
    let light = engine.register_policy(tiny_policy(19));
    let censors = [
        engine.register_censor(scoring_censor(0.1)),
        engine.register_censor(scoring_censor(0.9)),
    ];
    for (i, f) in flows.iter().enumerate() {
        let p = if i % 10 == 9 { light } else { heavy };
        engine
            .admit(f)
            .id(i)
            .policy(p)
            .censor(censors[i % 2])
            .submit();
    }
    engine.run()
}

proptest! {
    // Each case runs the engine nine times; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// 90%-one-policy mixes: steal on/off × shards 1/4 × batch 1/64 all
    /// reproduce the inline reference bit for bit.
    #[test]
    fn skewed_tenant_mix_is_invariant_across_stealing_shards_and_batches(
        flows in prop::collection::vec(arb_flow(), 10..30),
        seed in any::<u64>(),
        with_netem in any::<bool>(),
    ) {
        let netem = with_netem.then_some(NetEm {
            drop_rate: 0.08,
            retransmit_timeout_ms: 50.0,
            jitter_std: 0.2,
        });
        let reference = run_skewed(&flows, seed, 1, 1, false, false, netem);
        prop_assert_eq!(reference.outcomes.len(), flows.len());
        let ref_bits = reference.wire_bits();
        for steal in [false, true] {
            for shards in [1usize, 4] {
                for batch in [1usize, 64] {
                    let r = run_skewed(&flows, seed, batch, shards, true, steal, netem);
                    prop_assert_eq!(
                        r.wire_bits(),
                        ref_bits.clone(),
                        "steal {} x {} shards x batch {} diverged on the skewed mix",
                        steal,
                        shards,
                        batch
                    );
                }
            }
        }
    }
}

/// A single shard has no peer to steal from, so the steal counter must
/// stay zero even with stealing enabled on a heavily skewed mix.
#[test]
fn steal_counter_is_zero_on_a_single_shard() {
    let flows: Vec<Flow> = (0..30)
        .map(|i| Flow::from_pairs(&[(200 + 10 * i, 0.0), (-(300 + 5 * i), 2.0), (150, 1.0)]))
        .collect();
    let report = run_skewed(&flows, 11, 8, 1, true, true, None);
    assert_eq!(report.stolen_batches, 0, "n_shards == 1 cannot steal");
    assert!(report.frames > 0);
}
