//! The backend-conformance suite, instantiated per backend: the
//! executable form of the `amoeba_serve::backend` bit-exactness
//! obligations. Each `backend_conformance_suite!` line pins one backend
//! against the per-flow snapshot paths and against a pinned multi-tenant
//! `CpuBackend` reference engine run; the proptest below then drives the
//! candidate backends end to end over random flows × policies × censors
//! × shard counts 1/4 × batch sizes 1/64 and asserts wire identity with
//! the CPU reference.
//!
//! Adding a future backend (async, GPU, …) to the contract is one line
//! in each place:
//!
//! ```ignore
//! amoeba_serve::backend_conformance_suite!(my_backend, MyBackend::new());
//! // …and in `candidate_backends()`:
//! //   Arc::new(MyBackend::new()),
//! ```

use std::sync::Arc;

use proptest::prelude::*;

use amoeba_serve::testutil::{
    assert_reports_wire_identical, run_workload, tiny_policy, BackendWorkload,
};
use amoeba_serve::{CpuBackend, InferenceBackend, PackedBackend, SimdBackend};
use amoeba_traffic::NetEm;

mod common;
use common::arb_flow;

// The deterministic half of the suite, one module per backend. The CPU
// backend is included so the reference itself is pinned against the
// per-flow paths (and the suite never silently tests nothing).
amoeba_serve::backend_conformance_suite!(cpu, CpuBackend);
amoeba_serve::backend_conformance_suite!(simd, SimdBackend::new());
amoeba_serve::backend_conformance_suite!(packed, PackedBackend::new());

/// Every non-reference backend the end-to-end property below must hold
/// for. New backends join the contract by pushing one entry here.
/// (`QuantBackend` deliberately does NOT belong here: it is tier B and
/// is held to the tolerance contract in `tests/quant_tolerance.rs`.)
fn candidate_backends() -> Vec<Arc<dyn InferenceBackend>> {
    vec![Arc::new(SimdBackend::new()), Arc::new(PackedBackend::new())]
}

const CENSOR_SCORES: [f32; 3] = [0.1, 0.45, 0.9];

proptest! {
    // Each case runs one engine per backend plus the CPU reference;
    // keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random flows across 2 policies × 3 censors at shards 1/4 × batch
    /// 1/64 × pipelining on/off × stealing on/off (sampled actions,
    /// optional NetEm): every candidate backend's run is bit-identical —
    /// wire, verdicts, evasion — to the `CpuBackend` run of the same
    /// workload.
    #[test]
    fn backends_produce_identical_wire_end_to_end(
        flows in prop::collection::vec(arb_flow(), 6..18),
        seed in any::<u64>(),
        four_shards in any::<bool>(),
        big_batch in any::<bool>(),
        pipeline in any::<bool>(),
        steal in any::<bool>(),
        with_netem in any::<bool>(),
        assignment in prop::collection::vec((0usize..2, 0usize..3), 18),
    ) {
        let netem = with_netem.then_some(NetEm {
            drop_rate: 0.08,
            retransmit_timeout_ms: 50.0,
            jitter_std: 0.2,
        });
        let policies = [tiny_policy(7), tiny_policy(19)];
        let workload = BackendWorkload {
            flows: &flows,
            assignment: &assignment,
            policies: &policies,
            censor_scores: &CENSOR_SCORES,
            seed,
            batch: if big_batch { 64 } else { 1 },
            shards: if four_shards { 4 } else { 1 },
            pipeline,
            steal,
            netem,
        };
        let reference = run_workload(&workload, Arc::new(CpuBackend));
        for backend in candidate_backends() {
            let name = backend.name();
            let candidate = run_workload(&workload, backend);
            assert_reports_wire_identical(
                &reference,
                &candidate,
                &format!("backend {name} vs cpu at shards {} x batch {}",
                         workload.shards, workload.batch),
            );
        }
    }
}
