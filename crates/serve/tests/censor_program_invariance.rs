//! End-to-end property test of the censor-program refactor's core
//! equivalence claim: a one-shot [`Censor`] registered through
//! [`ServeEngine::register_censor`] — which wraps it in the degenerate
//! `ClassifierProgramFactory` streaming adapter — must reproduce the
//! pre-refactor one-shot verdict path *exactly*, for every session, at
//! every grouping.
//!
//! The pre-refactor path no longer exists in code, so the oracle is
//! recomputed from first principles: for each session the recorded wire
//! flow is replayed against the raw one-shot censor — inline verdicts at
//! every cadence point over growing wire prefixes, final score over the
//! full wire — and the session's `blocked_midstream` / `final_score` /
//! `evaded` must match bit-for-bit. The same run is then repeated across
//! shards 1/4 × pipeline on/off × steal on/off × batch 1/64 and the
//! wire plus every per-session verdict must be identical: program state
//! rides the work item, so grouping stays a pure throughput knob.

mod common;

use std::sync::Arc;

use common::arb_flow;
use proptest::prelude::*;

use amoeba_classifiers::{Censor, CensorKind};
use amoeba_serve::{
    testutil::tiny_policy, ServeConfig, ServeEngine, ServeReport, SessionStatus, VerdictPolicy,
};
use amoeba_traffic::{Flow, Layer};

/// Inline-verdict cadence used throughout: small enough that short
/// random flows still get mid-stream verdicts.
const EVERY: usize = 2;

/// A deterministic, wire-sensitive one-shot censor: the score folds
/// every packet size and delay through FNV, so mid-stream verdicts
/// genuinely change as the prefix grows — unlike a constant-score
/// fixture, this exercises the blocked-midstream state machine.
#[derive(Debug)]
struct FoldCensor;

impl Censor for FoldCensor {
    fn score(&self, flow: &Flow) -> f32 {
        let mut h: u32 = 0x811c_9dc5;
        for (s, d) in flow.sizes().iter().zip(flow.delays()) {
            h = (h ^ *s as u32).wrapping_mul(0x0100_0193);
            h = (h ^ d.to_bits()).wrapping_mul(0x0100_0193);
        }
        (h % 1001) as f32 / 1000.0
    }

    fn kind(&self) -> CensorKind {
        CensorKind::Dt
    }
}

fn run(
    flows: &[Flow],
    seed: u64,
    batch: usize,
    shards: usize,
    pipeline: bool,
    steal: bool,
) -> ServeReport {
    let cfg = ServeConfig::new(Layer::Tcp)
        .with_seed(seed)
        .with_batch(batch)
        .with_shards(shards)
        .with_pipeline(pipeline)
        .with_steal(steal)
        .with_verdicts(VerdictPolicy::Every(EVERY));
    let mut engine = ServeEngine::new(cfg);
    let p = engine.register_policy(tiny_policy(7));
    let c = engine.register_censor(Arc::new(FoldCensor));
    engine.admit_all(flows.iter(), p, c);
    engine.run()
}

/// The pre-refactor one-shot verdict trail, recomputed from the recorded
/// wire: inline `censor.blocks(prefix)` at every cadence point before the
/// final frame (stopping once blocked), then `censor.score(full wire)` as
/// the final verdict. Without NetEm each frame is exactly one wire
/// packet, so `wire.prefix(k)` is the censor-visible flow after frame `k`.
fn one_shot_oracle(wire: &Flow, frames: usize) -> (bool, f32) {
    let censor = FoldCensor;
    let mut blocked = false;
    for k in 1..frames {
        if k % EVERY == 0 && !blocked && censor.score(&wire.prefix(k)) >= 0.5 {
            blocked = true;
        }
    }
    (blocked, censor.score(wire))
}

proptest! {
    // Each case runs the dataplane nine times; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random flows: the adapted classifier program's verdicts equal the
    /// recomputed one-shot oracle session-by-session, and every grouping
    /// (shards × pipeline × steal × batch) reproduces wire and verdicts
    /// bit-for-bit.
    #[test]
    fn adapted_classifier_matches_one_shot_path_across_groupings(
        flows in prop::collection::vec(arb_flow(), 4..20),
        seed in any::<u64>(),
        pipeline in any::<bool>(),
        steal in any::<bool>(),
    ) {
        let reference = run(&flows, seed, 1, 1, false, false);
        prop_assert_eq!(reference.outcomes.len(), flows.len());
        for o in &reference.outcomes {
            // A degenerate classifier program never tears a session down.
            prop_assert_eq!(o.status, SessionStatus::Completed);
            prop_assert_eq!(o.frames, o.wire.len(), "one frame = one wire packet");
            let (blocked, final_score) = one_shot_oracle(&o.wire, o.frames);
            prop_assert_eq!(
                o.blocked_midstream, blocked,
                "session {}: inline verdict trail diverged from the one-shot oracle", o.id
            );
            prop_assert_eq!(
                o.final_score, final_score,
                "session {}: final score diverged from the one-shot oracle", o.id
            );
            prop_assert_eq!(o.evaded, !blocked && final_score < 0.5);
        }
        let ref_bits = reference.wire_bits();
        for shards in [1usize, 4] {
            for batch in [1usize, 64] {
                let r = run(&flows, seed, batch, shards, pipeline, steal);
                prop_assert_eq!(
                    r.wire_bits(),
                    ref_bits.clone(),
                    "{} shards x batch {} (pipeline {}, steal {}) moved a wire bit",
                    shards, batch, pipeline, steal
                );
                for (a, b) in reference.outcomes.iter().zip(&r.outcomes) {
                    prop_assert_eq!(a.id, b.id);
                    prop_assert_eq!(a.final_score, b.final_score);
                    prop_assert_eq!(a.blocked_midstream, b.blocked_midstream);
                    prop_assert_eq!(a.status, b.status);
                    prop_assert_eq!(a.evaded, b.evaded);
                }
            }
        }
    }
}
