//! The tolerance conformance tier (tier B), instantiated for
//! `QuantBackend`: the executable form of the bounded-divergence
//! obligations documented in `amoeba_serve::backend`.
//!
//! Unlike `tests/backend_conformance.rs`, nothing here asserts wire
//! *identity* — int8 quantization deliberately breaks it. Instead the
//! quantized engine run is compared against the `CpuBackend` reference
//! run of the same workload under `ToleranceSpec`: every session still
//! completes, per-session frame counts and wire bytes stay within a
//! relative band, and the evasion rate under wire-sensitive statistical
//! censors moves by at most ε — overall and per tenant.
//!
//! What stays *exact* even in tier B: the quantized run itself must be
//! deterministic (same workload twice ⇒ bit-identical reports), because
//! row independence and replayability are obligations of every tier.

use std::sync::Arc;

use proptest::prelude::*;

use amoeba_serve::testutil::{
    assert_reports_wire_identical, check_backend_within_tolerance, check_reports_within_tolerance,
    run_workload_with, stat_censors, tiny_policy, BackendWorkload, ToleranceSpec,
};
use amoeba_serve::{CpuBackend, QuantBackend};

mod common;
use common::arb_flow;

/// The pinned tier-B gate: the fixed multi-tenant workload from
/// `testutil`, quant vs cpu, under the default spec. This is the check
/// CI's quant-tolerance leg runs.
#[test]
fn quant_backend_passes_the_tolerance_tier() {
    check_backend_within_tolerance(Arc::new(QuantBackend::new()), &ToleranceSpec::default());
}

proptest! {
    // Each case runs three engines (cpu reference + quant twice); keep
    // the count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random flows across 2 policies × 3 statistical censors at shards
    /// 1/4 × batch 1/32 × pipelining/stealing on/off: the quantized
    /// run's evasion rate stays within ε of the CPU reference (overall
    /// and per tenant), wire divergence stays inside the relative
    /// bands, and the quantized run is itself deterministic.
    #[test]
    fn quant_stays_within_tolerance_end_to_end(
        flows in prop::collection::vec(arb_flow(), 8..20),
        seed in any::<u64>(),
        four_shards in any::<bool>(),
        big_batch in any::<bool>(),
        pipeline in any::<bool>(),
        steal in any::<bool>(),
        assignment in prop::collection::vec((0usize..2, 0usize..3), 20),
    ) {
        let policies = [tiny_policy(7), tiny_policy(19)];
        let workload = BackendWorkload {
            flows: &flows,
            assignment: &assignment,
            policies: &policies,
            // Unused: the statistical censors below replace the
            // constant-score stand-ins.
            censor_scores: &[],
            seed,
            batch: if big_batch { 32 } else { 1 },
            shards: if four_shards { 4 } else { 1 },
            pipeline,
            steal,
            netem: None,
        };
        let censors = stat_censors();
        let reference = run_workload_with(&workload, &censors, Arc::new(CpuBackend));
        let quant = run_workload_with(&workload, &censors, Arc::new(QuantBackend::new()));
        check_reports_within_tolerance(
            &reference,
            &quant,
            &ToleranceSpec::default(),
            &format!(
                "quant-int8 vs cpu at shards {} x batch {}",
                workload.shards, workload.batch
            ),
        );
        let quant_again = run_workload_with(&workload, &censors, Arc::new(QuantBackend::new()));
        assert_reports_wire_identical(
            &quant,
            &quant_again,
            "quant-int8 re-run of the identical workload",
        );
    }
}
