//! Network-environment emulation: packet loss, retransmission, and jitter.
//!
//! Backs the §5.5.2 robustness experiment (Figure 6): the paper re-collects
//! the Tor dataset under enforced bidirectional packet-drop rates from 0%
//! to 10% and cross-evaluates Amoeba across environments. Here the same
//! effect is obtained by post-processing generated flows: a dropped packet
//! is retransmitted after a timeout, which the on-path censor observes as a
//! duplicate with a large inter-packet gap — exactly the heterogeneity the
//! experiment needs.

use rand::Rng;

use crate::flow::{Flow, Packet};

/// Emulated network-path configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetEm {
    /// Probability that a packet is lost and retransmitted (bidirectional).
    pub drop_rate: f32,
    /// Retransmission timeout added before the retransmitted copy (ms).
    pub retransmit_timeout_ms: f32,
    /// Multiplicative delay jitter: each delay is scaled by
    /// `1 + jitter_std * z` with `z ~ N(0, 1)` clamped symmetrically to
    /// `±1/jitter_std`, so the factor stays in `[0, 2]` and — because the
    /// clamp is symmetric around 0 — `E[factor] = 1` exactly: jitter
    /// perturbs delays without inflating their mean. (A one-sided
    /// `max(0, 1 + σz)` truncation would bias the mean upward by ≈ 4% at
    /// `σ = 0.8`.)
    pub jitter_std: f32,
}

impl Default for NetEm {
    fn default() -> Self {
        Self {
            drop_rate: 0.0,
            retransmit_timeout_ms: 200.0,
            jitter_std: 0.05,
        }
    }
}

impl NetEm {
    /// A lossy environment with the given drop rate and default RTO/jitter.
    pub fn with_drop_rate(drop_rate: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_rate),
            "drop rate must be in [0,1]"
        );
        Self {
            drop_rate,
            ..Default::default()
        }
    }

    /// An ideal environment (no loss, no jitter).
    pub fn ideal() -> Self {
        Self {
            drop_rate: 0.0,
            retransmit_timeout_ms: 0.0,
            jitter_std: 0.0,
        }
    }

    /// Applies impairment to a single packet in transmission order — the
    /// streaming path used by the serving dataplane, which impairs frames
    /// as they are emitted rather than post-processing a finished flow.
    /// `first` marks the first packet of a flow (jitter never applies to
    /// it, matching [`NetEm::apply`]). Returns the packet as an on-path
    /// observer records it, plus an optional retransmitted duplicate.
    pub fn apply_packet<R: Rng + ?Sized>(
        &self,
        packet: Packet,
        first: bool,
        rng: &mut R,
    ) -> (Packet, Option<Packet>) {
        let mut pkt = packet;
        if !first && self.jitter_std > 0.0 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            // Symmetric clamp: the factor stays non-negative AND its mean
            // stays exactly 1 (a one-sided max(0, ·) truncation silently
            // inflated E[delay] at large jitter_std).
            let lim = 1.0 / self.jitter_std;
            pkt.delay_ms *= 1.0 + self.jitter_std * z.clamp(-lim, lim);
        }
        let dup = if self.drop_rate > 0.0 && rng.gen_bool(self.drop_rate as f64) {
            // The original copy crossed the observation point and was
            // lost downstream; the retransmission appears after an RTO.
            let mut retx = pkt;
            retx.delay_ms =
                self.retransmit_timeout_ms * (1.0 + rng.gen_range(-0.2..0.2f32)).max(0.1);
            Some(retx)
        } else {
            None
        };
        (pkt, dup)
    }

    /// Applies loss/retransmission/jitter to a flow, returning what an
    /// on-path observer between client and first relay would record.
    pub fn apply<R: Rng + ?Sized>(&self, flow: &Flow, rng: &mut R) -> Flow {
        let mut out = Flow::new();
        for (i, p) in flow.packets.iter().enumerate() {
            let (pkt, dup) = self.apply_packet(*p, i == 0, rng);
            out.push(pkt);
            if let Some(retx) = dup {
                out.push(retx);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_flow() -> Flow {
        let mut f = Flow::new();
        f.push(Packet::outbound(500, 0.0));
        for _ in 0..50 {
            f.push(Packet::inbound(1448, 1.0));
        }
        f
    }

    #[test]
    fn ideal_environment_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = base_flow();
        let g = NetEm::ideal().apply(&f, &mut rng);
        assert_eq!(f, g);
    }

    #[test]
    fn drop_rate_inserts_retransmissions() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = base_flow();
        let netem = NetEm {
            drop_rate: 0.2,
            retransmit_timeout_ms: 100.0,
            jitter_std: 0.0,
        };
        let g = netem.apply(&f, &mut rng);
        assert!(
            g.len() > f.len(),
            "expected duplicates: {} vs {}",
            g.len(),
            f.len()
        );
        // Retransmitted copies carry the RTO-scale delay.
        assert!(g.packets.iter().any(|p| p.delay_ms > 50.0));
    }

    #[test]
    fn zero_drop_preserves_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = base_flow();
        let netem = NetEm {
            drop_rate: 0.0,
            retransmit_timeout_ms: 100.0,
            jitter_std: 0.1,
        };
        let g = netem.apply(&f, &mut rng);
        assert_eq!(g.len(), f.len());
        // Jitter perturbs delays but keeps them non-negative.
        assert!(g.packets.iter().all(|p| p.delay_ms >= 0.0));
    }

    #[test]
    fn higher_drop_rate_creates_more_duplicates() {
        let f = base_flow();
        let low = NetEm::with_drop_rate(0.025)
            .apply(&f, &mut StdRng::seed_from_u64(4))
            .len();
        let high = NetEm::with_drop_rate(0.10)
            .apply(&f, &mut StdRng::seed_from_u64(4))
            .len();
        assert!(high >= low, "high {high} low {low}");
    }

    #[test]
    #[should_panic(expected = "drop rate")]
    fn rejects_invalid_drop_rate() {
        let _ = NetEm::with_drop_rate(1.5);
    }

    /// Jitter must not shift the mean delay: with the symmetric clamp,
    /// `E[observed delay]` stays within 1% of the base delay even at
    /// large `jitter_std` (the old one-sided `max(0, 1 + σz)` truncation
    /// was ≈ 4% high at σ = 0.8).
    #[test]
    fn jitter_preserves_mean_delay_within_one_percent() {
        let base_delay = 10.0f32;
        for &sigma in &[0.3f32, 0.8, 1.5] {
            let netem = NetEm {
                drop_rate: 0.0,
                retransmit_timeout_ms: 0.0,
                jitter_std: sigma,
            };
            let mut rng = StdRng::seed_from_u64(42);
            let n = 200_000usize;
            let mut sum = 0.0f64;
            for _ in 0..n {
                let (pkt, dup) =
                    netem.apply_packet(Packet::outbound(100, base_delay), false, &mut rng);
                assert!(pkt.delay_ms >= 0.0, "σ={sigma}: negative delay");
                assert!(dup.is_none());
                sum += pkt.delay_ms as f64;
            }
            let mean = sum / n as f64;
            let rel = (mean - base_delay as f64).abs() / base_delay as f64;
            assert!(
                rel < 0.01,
                "σ={sigma}: mean {mean:.4} vs base {base_delay} ({:.2}% off)",
                rel * 100.0
            );
        }
    }

    /// The streaming path must reproduce the whole-flow path exactly when
    /// driven by the same RNG stream — the dataplane relies on this.
    #[test]
    fn apply_packet_stream_matches_whole_flow_apply() {
        let f = base_flow();
        let netem = NetEm {
            drop_rate: 0.15,
            retransmit_timeout_ms: 120.0,
            jitter_std: 0.08,
        };
        let whole = netem.apply(&f, &mut StdRng::seed_from_u64(9));
        let mut rng = StdRng::seed_from_u64(9);
        let mut streamed = Flow::new();
        for (i, p) in f.packets.iter().enumerate() {
            let (pkt, dup) = netem.apply_packet(*p, i == 0, &mut rng);
            streamed.push(pkt);
            if let Some(retx) = dup {
                streamed.push(retx);
            }
        }
        assert_eq!(whole, streamed);
    }
}
