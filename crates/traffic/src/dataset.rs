//! Labelled datasets and the paper's 40/40/10/10 split protocol (§5.4).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::flow::{Flow, Label};
use crate::generate::{
    HttpsTcpGenerator, HttpsTlsGenerator, Layer, TorGenerator, TrafficGenerator, V2RayGenerator,
};
use crate::netem::NetEm;

/// Which of the paper's two datasets to synthesise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DatasetKind {
    /// Tor vs plain HTTPS at the TCP layer.
    Tor,
    /// V2Ray vs plain HTTPS at the TLS-record layer.
    V2Ray,
}

impl DatasetKind {
    /// Observation layer of this dataset.
    pub fn layer(&self) -> Layer {
        match self {
            DatasetKind::Tor => Layer::Tcp,
            DatasetKind::V2Ray => Layer::TlsRecord,
        }
    }
}

/// A labelled collection of flows.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Flows.
    pub flows: Vec<Flow>,
    /// Parallel labels.
    pub labels: Vec<Label>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Appends a labelled flow.
    pub fn push(&mut self, flow: Flow, label: Label) {
        self.flows.push(flow);
        self.labels.push(label);
    }

    /// Count of samples with the given label.
    pub fn count_label(&self, label: Label) -> usize {
        self.labels.iter().filter(|&&l| l == label).count()
    }

    /// Only the flows carrying `label`.
    pub fn filter_label(&self, label: Label) -> Dataset {
        let mut out = Dataset::new();
        for (f, &l) in self.flows.iter().zip(&self.labels) {
            if l == label {
                out.push(f.clone(), l);
            }
        }
        out
    }

    /// Labels as 0/1 bytes (1 = sensitive).
    pub fn labels_u8(&self) -> Vec<u8> {
        self.labels.iter().map(Label::as_u8).collect()
    }

    /// Shuffles samples in place.
    pub fn shuffle(&mut self, rng: &mut StdRng) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        self.flows = order.iter().map(|&i| self.flows[i].clone()).collect();
        self.labels = order.iter().map(|&i| self.labels[i]).collect();
    }

    /// Splits into the paper's four subsets:
    /// `clf_train` (40%), `attack_train` (40%), `validation` (10%),
    /// `test` (10%). Shuffles first with the given seed.
    pub fn split(mut self, seed: u64) -> Splits {
        let mut rng = StdRng::seed_from_u64(seed);
        self.shuffle(&mut rng);
        let n = self.len();
        let a = (n as f32 * 0.4) as usize;
        let b = (n as f32 * 0.8) as usize;
        let c = (n as f32 * 0.9) as usize;
        let mut clf_train = Dataset::new();
        let mut attack_train = Dataset::new();
        let mut validation = Dataset::new();
        let mut test = Dataset::new();
        for (i, (f, l)) in self.flows.into_iter().zip(self.labels).enumerate() {
            let target = if i < a {
                &mut clf_train
            } else if i < b {
                &mut attack_train
            } else if i < c {
                &mut validation
            } else {
                &mut test
            };
            target.push(f, l);
        }
        Splits {
            clf_train,
            attack_train,
            validation,
            test,
        }
    }
}

/// The paper's four-way dataset split.
#[derive(Debug, Clone)]
pub struct Splits {
    /// 40% — trains the censoring classifiers.
    pub clf_train: Dataset,
    /// 40% — trains Amoeba (disjoint from the censor's data, §5.4).
    pub attack_train: Dataset,
    /// 10% — hyperparameter tuning.
    pub validation: Dataset,
    /// 10% — final evaluation.
    pub test: Dataset,
}

/// Builds a balanced synthetic dataset of `n_per_class` sensitive +
/// `n_per_class` benign flows, optionally passed through a [`NetEm`]
/// environment.
pub fn build_dataset(
    kind: DatasetKind,
    n_per_class: usize,
    netem: Option<NetEm>,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new();
    match kind {
        DatasetKind::Tor => {
            let sensitive = TorGenerator::default();
            let benign = HttpsTcpGenerator::default();
            for _ in 0..n_per_class {
                let mut f = sensitive.generate(&mut rng);
                if let Some(ne) = &netem {
                    f = ne.apply(&f, &mut rng);
                }
                ds.push(f, Label::Sensitive);
                let mut g = benign.generate(&mut rng);
                if let Some(ne) = &netem {
                    g = ne.apply(&g, &mut rng);
                }
                ds.push(g, Label::Benign);
            }
        }
        DatasetKind::V2Ray => {
            let sensitive = V2RayGenerator::default();
            let benign = HttpsTlsGenerator::default();
            for _ in 0..n_per_class {
                let mut f = sensitive.generate(&mut rng);
                if let Some(ne) = &netem {
                    f = ne.apply(&f, &mut rng);
                }
                ds.push(f, Label::Sensitive);
                let mut g = benign.generate(&mut rng);
                if let Some(ne) = &netem {
                    g = ne.apply(&g, &mut rng);
                }
                ds.push(g, Label::Benign);
            }
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_balanced_and_seeded() {
        let ds = build_dataset(DatasetKind::Tor, 50, None, 7);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.count_label(Label::Sensitive), 50);
        assert_eq!(ds.count_label(Label::Benign), 50);
        let ds2 = build_dataset(DatasetKind::Tor, 50, None, 7);
        assert_eq!(ds.flows[0], ds2.flows[0]);
    }

    #[test]
    fn split_fractions_match_paper() {
        let ds = build_dataset(DatasetKind::V2Ray, 100, None, 1);
        let splits = ds.split(42);
        assert_eq!(splits.clf_train.len(), 80);
        assert_eq!(splits.attack_train.len(), 80);
        assert_eq!(splits.validation.len(), 20);
        assert_eq!(splits.test.len(), 20);
    }

    #[test]
    fn split_preserves_total_and_roughly_balances() {
        let ds = build_dataset(DatasetKind::Tor, 200, None, 3);
        let splits = ds.split(3);
        let total = splits.clf_train.len()
            + splits.attack_train.len()
            + splits.validation.len()
            + splits.test.len();
        assert_eq!(total, 400);
        // Shuffled split keeps both classes present in every subset.
        for sub in [
            &splits.clf_train,
            &splits.attack_train,
            &splits.validation,
            &splits.test,
        ] {
            assert!(sub.count_label(Label::Sensitive) > 0);
            assert!(sub.count_label(Label::Benign) > 0);
        }
    }

    #[test]
    fn netem_changes_flows() {
        // The clean and lossy builds consume different RNG streams after
        // the first flow, so per-dataset packet totals are not directly
        // comparable; assert that the NetEm plumbing is actually applied
        // (datasets differ) and that retransmitted duplicates appear.
        let clean = build_dataset(DatasetKind::Tor, 20, None, 11);
        let lossy = build_dataset(DatasetKind::Tor, 20, Some(NetEm::with_drop_rate(0.1)), 11);
        assert_ne!(clean.flows, lossy.flows);
        let has_rto_gap = lossy
            .flows
            .iter()
            .flat_map(|f| f.packets.iter())
            .any(|p| p.delay_ms > 100.0);
        assert!(
            has_rto_gap,
            "no retransmission-timeout gaps in lossy dataset"
        );
    }

    #[test]
    fn filter_label_partitions() {
        let ds = build_dataset(DatasetKind::Tor, 10, None, 2);
        let s = ds.filter_label(Label::Sensitive);
        let b = ds.filter_label(Label::Benign);
        assert_eq!(s.len() + b.len(), ds.len());
        assert!(s.labels.iter().all(|&l| l == Label::Sensitive));
    }

    #[test]
    fn kind_layer_mapping() {
        assert_eq!(DatasetKind::Tor.layer(), Layer::Tcp);
        assert_eq!(DatasetKind::V2Ray.layer(), Layer::TlsRecord);
    }
}
