//! # amoeba-traffic
//!
//! Traffic substrate for the Amoeba (CoNEXT'23) reproduction: flow types,
//! synthetic Tor/V2Ray/HTTPS generators (the documented substitution for
//! the paper's real captures — see DESIGN.md §2), network-environment
//! emulation (loss/retransmit/jitter for the Figure 6 experiment), the
//! 40/40/10/10 dataset split protocol, and the feature extractors consumed
//! by the censoring classifiers (166 hand-crafted features for DT/RF,
//! CUMUL traces for the SVM, normalised sequence representations for the
//! NN models).

#![warn(missing_docs)]

pub mod cumul;
pub mod dataset;
pub mod features;
pub mod flow;
pub mod generate;
pub mod netem;
pub mod repr;
pub mod stats;

pub use cumul::{cumul_features, cumul_features_batch, DEFAULT_POINTS};
pub use dataset::{build_dataset, Dataset, DatasetKind, Splits};
pub use features::{
    extract_features, extract_features_batch, feature_schema, FeatureKind, FeatureSchema,
    NUM_FEATURES,
};
pub use flow::{Direction, Flow, Label, Packet};
pub use generate::{
    lognormal, HttpsTcpGenerator, HttpsTlsGenerator, Layer, TorGenerator, TrafficGenerator,
    V2RayGenerator,
};
pub use netem::NetEm;
pub use repr::FlowRepr;
pub use stats::{ecdf, histogram, percentile, std_dev, Summary};
