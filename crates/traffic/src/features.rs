//! The 166-dimensional flow feature vector used by the tree-based censors.
//!
//! The paper follows Barradas et al. \[2\] and "extract\[s\] 166 features from
//! each network flow, covering bi-directional packet/timing statistics,
//! burst behaviors, percentile features and flow-level information"
//! (§5.1). The exact list is not published; this module reconstructs a
//! 166-feature vector from those four documented categories. Every feature
//! is tagged [`FeatureKind::Packet`] or [`FeatureKind::Timing`], which is
//! what the Figure 4 experiment (packet- vs timing-feature importance)
//! consumes.

use std::sync::OnceLock;

use crate::flow::{Direction, Flow};
use crate::generate::Layer;
use crate::stats::{histogram, Summary};

/// Total number of features produced by [`extract_features`].
pub const NUM_FEATURES: usize = 166;

/// Whether a feature is derived from packet sizes/counts or from timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Size/count/direction-derived.
    Packet,
    /// Delay/duration/rate-derived.
    Timing,
}

/// Static description of the feature vector layout.
#[derive(Debug, Clone)]
pub struct FeatureSchema {
    /// Feature names, in extraction order.
    pub names: Vec<String>,
    /// Feature kinds, parallel to `names`.
    pub kinds: Vec<FeatureKind>,
}

fn emit_all(flow: &Flow, layer: Layer, emit: &mut impl FnMut(String, FeatureKind, f32)) {
    use FeatureKind::{Packet, Timing};
    let max_unit = layer.max_unit() as f32;

    let out_sizes: Vec<f32> = flow
        .packets
        .iter()
        .filter(|p| p.direction() == Direction::Outbound)
        .map(|p| p.magnitude() as f32)
        .collect();
    let in_sizes: Vec<f32> = flow
        .packets
        .iter()
        .filter(|p| p.direction() == Direction::Inbound)
        .map(|p| p.magnitude() as f32)
        .collect();
    let bi_sizes: Vec<f32> = flow.packets.iter().map(|p| p.magnitude() as f32).collect();

    // --- 1. bidirectional packet-size statistics (3 x 12 = 36, Packet) ---
    for (dir, sizes) in [("out", &out_sizes), ("in", &in_sizes), ("bi", &bi_sizes)] {
        let s = Summary::of(sizes);
        for (name, v) in Summary::names().iter().zip(s.to_vec()) {
            emit(format!("size_{dir}_{name}"), Packet, v);
        }
    }

    // --- 2. timing statistics (3 x 12 = 36, Timing) -----------------------
    let out_gaps = flow.same_direction_gaps(Direction::Outbound);
    let in_gaps = flow.same_direction_gaps(Direction::Inbound);
    let bi_gaps: Vec<f32> = flow.packets.iter().skip(1).map(|p| p.delay_ms).collect();
    for (dir, gaps) in [("out", &out_gaps), ("in", &in_gaps), ("bi", &bi_gaps)] {
        let s = Summary::of(gaps);
        for (name, v) in Summary::names().iter().zip(s.to_vec()) {
            emit(format!("gap_{dir}_{name}"), Timing, v);
        }
    }

    // --- 3. burst behaviour (2 x (7 Packet + 2 Timing) = 18) --------------
    let bursts = flow.bursts();
    for dir in [Direction::Outbound, Direction::Inbound] {
        let tag = if dir == Direction::Outbound {
            "out"
        } else {
            "in"
        };
        let lens: Vec<f32> = bursts
            .iter()
            .filter(|b| b.0 == dir)
            .map(|b| b.1 as f32)
            .collect();
        let bytes: Vec<f32> = bursts
            .iter()
            .filter(|b| b.0 == dir)
            .map(|b| b.2 as f32)
            .collect();
        let durations: Vec<f32> = bursts.iter().filter(|b| b.0 == dir).map(|b| b.3).collect();
        let ls = Summary::of(&lens);
        let bs = Summary::of(&bytes);
        let ds = Summary::of(&durations);
        emit(format!("burst_{tag}_count"), Packet, lens.len() as f32);
        emit(format!("burst_{tag}_len_mean"), Packet, ls.mean);
        emit(format!("burst_{tag}_len_std"), Packet, ls.std);
        emit(format!("burst_{tag}_len_max"), Packet, ls.max);
        emit(format!("burst_{tag}_bytes_mean"), Packet, bs.mean);
        emit(format!("burst_{tag}_bytes_std"), Packet, bs.std);
        emit(format!("burst_{tag}_bytes_max"), Packet, bs.max);
        emit(format!("burst_{tag}_dur_mean"), Timing, ds.mean);
        emit(format!("burst_{tag}_dur_max"), Timing, ds.max);
    }

    // --- 4. size histograms (2 x 10 = 20, Packet) --------------------------
    for (tag, sizes) in [("out", &out_sizes), ("in", &in_sizes)] {
        for (i, frac) in histogram(sizes, 0.0, max_unit, 10).into_iter().enumerate() {
            emit(format!("size_hist_{tag}_{i}"), Packet, frac);
        }
    }

    // --- 5. delay histogram (10, Timing) -----------------------------------
    for (i, frac) in histogram(&bi_gaps, 0.0, 500.0, 10).into_iter().enumerate() {
        emit(format!("gap_hist_bi_{i}"), Timing, frac);
    }

    // --- 6. cumulative-trace interpolation (10, Packet) --------------------
    let mut cumulative = Vec::with_capacity(flow.len());
    let mut acc = 0.0f32;
    for p in &flow.packets {
        acc += p.size as f32;
        cumulative.push(acc);
    }
    for i in 0..10 {
        let v = if cumulative.is_empty() {
            0.0
        } else {
            let pos = (i as f32 / 9.0) * (cumulative.len() - 1) as f32;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f32;
            cumulative[lo] * (1.0 - frac) + cumulative[hi] * frac
        };
        emit(format!("cumul_{i}"), Packet, v);
    }

    // --- 7. first-packets behaviour (8 Packet + 8 Timing = 16) -------------
    for i in 0..8 {
        let v = flow.packets.get(i).map(|p| p.size as f32).unwrap_or(0.0);
        emit(format!("first_size_{i}"), Packet, v);
    }
    for i in 0..8 {
        let v = flow.packets.get(i).map(|p| p.delay_ms).unwrap_or(0.0);
        emit(format!("first_gap_{i}"), Timing, v);
    }

    // --- 8. flow-level features (11 Packet + 5 Timing = 16) ----------------
    let n = flow.len() as f32;
    let n_out = out_sizes.len() as f32;
    let n_in = in_sizes.len() as f32;
    let bytes_out: f32 = out_sizes.iter().sum();
    let bytes_in: f32 = in_sizes.iter().sum();
    let duration = flow.duration_ms();
    emit("pkt_count".into(), Packet, n);
    emit("pkt_count_out".into(), Packet, n_out);
    emit("pkt_count_in".into(), Packet, n_in);
    emit(
        "pkt_ratio_out".into(),
        Packet,
        if n > 0.0 { n_out / n } else { 0.0 },
    );
    emit("bytes_total".into(), Packet, bytes_out + bytes_in);
    emit("bytes_out".into(), Packet, bytes_out);
    emit("bytes_in".into(), Packet, bytes_in);
    emit(
        "bytes_ratio_out".into(),
        Packet,
        if bytes_out + bytes_in > 0.0 {
            bytes_out / (bytes_out + bytes_in)
        } else {
            0.0
        },
    );
    let flips = flow
        .packets
        .windows(2)
        .filter(|w| w[0].direction() != w[1].direction())
        .count() as f32;
    emit(
        "dir_flip_rate".into(),
        Packet,
        if n > 1.0 { flips / (n - 1.0) } else { 0.0 },
    );
    let at_max = bi_sizes.iter().filter(|&&s| s >= max_unit).count() as f32;
    emit(
        "frac_max_unit".into(),
        Packet,
        if n > 0.0 { at_max / n } else { 0.0 },
    );
    let mut unique = bi_sizes.clone();
    unique.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    unique.dedup();
    emit(
        "size_diversity".into(),
        Packet,
        if n > 0.0 {
            unique.len() as f32 / n
        } else {
            0.0
        },
    );

    emit("duration_ms".into(), Timing, duration);
    let secs = (duration / 1000.0).max(1e-6);
    emit("pkts_per_sec".into(), Timing, n / secs);
    emit(
        "bytes_per_sec".into(),
        Timing,
        (bytes_out + bytes_in) / secs,
    );
    let first_response = flow
        .packets
        .iter()
        .scan(0.0f32, |t, p| {
            *t += p.delay_ms;
            Some((*t, p.direction()))
        })
        .find(|(_, d)| *d == Direction::Inbound)
        .map(|(t, _)| t)
        .unwrap_or(0.0);
    emit("first_response_ms".into(), Timing, first_response);
    let mean_out_gap = if out_gaps.is_empty() {
        0.0
    } else {
        out_gaps.iter().sum::<f32>() / out_gaps.len() as f32
    };
    let mean_in_gap = if in_gaps.is_empty() {
        0.0
    } else {
        in_gaps.iter().sum::<f32>() / in_gaps.len() as f32
    };
    emit(
        "gap_ratio_out_in".into(),
        Timing,
        if mean_in_gap > 1e-9 {
            mean_out_gap / mean_in_gap
        } else {
            0.0
        },
    );
    emit("burst_count_total".into(), Packet, bursts.len() as f32);
    let longest_run = bursts.iter().map(|b| b.1).max().unwrap_or(0) as f32;
    emit(
        "longest_run_frac".into(),
        Packet,
        if n > 0.0 { longest_run / n } else { 0.0 },
    );
    let idle: f32 = bi_gaps.iter().filter(|&&g| g > 100.0).sum();
    emit(
        "idle_frac".into(),
        Timing,
        if duration > 1e-9 {
            idle / duration
        } else {
            0.0
        },
    );
    let first5: Vec<f32> = bi_gaps.iter().take(5).copied().collect();
    emit(
        "mean_gap_first5".into(),
        Timing,
        if first5.is_empty() {
            0.0
        } else {
            first5.iter().sum::<f32>() / first5.len() as f32
        },
    );
}

/// Extracts the 166-feature vector for a flow on the given layer.
pub fn extract_features(flow: &Flow, layer: Layer) -> Vec<f32> {
    let mut values = Vec::with_capacity(NUM_FEATURES);
    emit_all(flow, layer, &mut |_, _, v| {
        values.push(if v.is_finite() { v } else { 0.0 })
    });
    debug_assert_eq!(values.len(), NUM_FEATURES);
    values
}

/// The static feature schema (names + kinds).
pub fn feature_schema() -> &'static FeatureSchema {
    static SCHEMA: OnceLock<FeatureSchema> = OnceLock::new();
    SCHEMA.get_or_init(|| {
        let mut names = Vec::with_capacity(NUM_FEATURES);
        let mut kinds = Vec::with_capacity(NUM_FEATURES);
        let dummy = Flow::from_pairs(&[(100, 0.0), (-200, 1.0)]);
        emit_all(&dummy, Layer::Tcp, &mut |n, k, _| {
            names.push(n);
            kinds.push(k);
        });
        assert_eq!(
            names.len(),
            NUM_FEATURES,
            "feature schema drifted from NUM_FEATURES"
        );
        FeatureSchema { names, kinds }
    })
}

/// Extracts features for every flow in a slice.
pub fn extract_features_batch(flows: &[Flow], layer: Layer) -> Vec<Vec<f32>> {
    flows.iter().map(|f| extract_features(f, layer)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Packet;
    use crate::generate::{TorGenerator, TrafficGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exactly_166_features() {
        let mut rng = StdRng::seed_from_u64(1);
        let flow = TorGenerator::default().generate(&mut rng);
        let f = extract_features(&flow, Layer::Tcp);
        assert_eq!(f.len(), NUM_FEATURES);
        assert_eq!(f.len(), 166);
    }

    #[test]
    fn schema_is_consistent_and_unique() {
        let schema = feature_schema();
        assert_eq!(schema.names.len(), NUM_FEATURES);
        assert_eq!(schema.kinds.len(), NUM_FEATURES);
        let mut sorted = schema.names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), NUM_FEATURES, "duplicate feature names");
    }

    #[test]
    fn kind_split_covers_both_categories() {
        let schema = feature_schema();
        let packet = schema
            .kinds
            .iter()
            .filter(|k| **k == FeatureKind::Packet)
            .count();
        let timing = schema
            .kinds
            .iter()
            .filter(|k| **k == FeatureKind::Timing)
            .count();
        assert_eq!(packet + timing, NUM_FEATURES);
        assert!(packet > 40, "packet features: {packet}");
        assert!(timing > 40, "timing features: {timing}");
    }

    #[test]
    fn features_are_finite_for_edge_cases() {
        // Single-packet flow, single-direction flow, zero-delay flow.
        let cases = vec![
            Flow::from_pairs(&[(100, 0.0)]),
            Flow::from_pairs(&[(100, 0.0), (200, 0.0), (300, 0.0)]),
            Flow::from_pairs(&[(-500, 0.0), (-500, 0.0)]),
        ];
        for flow in cases {
            let f = extract_features(&flow, Layer::Tcp);
            assert_eq!(f.len(), NUM_FEATURES);
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn byte_accounting_features_match_flow() {
        let mut flow = Flow::new();
        flow.push(Packet::outbound(300, 0.0));
        flow.push(Packet::inbound(700, 5.0));
        let f = extract_features(&flow, Layer::Tcp);
        let schema = feature_schema();
        let idx = |name: &str| schema.names.iter().position(|n| n == name).unwrap();
        assert_eq!(f[idx("bytes_out")], 300.0);
        assert_eq!(f[idx("bytes_in")], 700.0);
        assert_eq!(f[idx("bytes_total")], 1000.0);
        assert_eq!(f[idx("pkt_count")], 2.0);
        assert_eq!(f[idx("duration_ms")], 5.0);
        assert_eq!(f[idx("first_response_ms")], 5.0);
    }

    #[test]
    fn tor_and_https_feature_vectors_differ() {
        use crate::generate::HttpsTcpGenerator;
        let mut rng = StdRng::seed_from_u64(2);
        let tor = TorGenerator::default().generate(&mut rng);
        let https = HttpsTcpGenerator::default().generate(&mut rng);
        let ft = extract_features(&tor, Layer::Tcp);
        let fh = extract_features(&https, Layer::Tcp);
        let diff: f32 = ft.iter().zip(&fh).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1.0, "feature vectors should differ");
    }

    #[test]
    fn batch_matches_individual() {
        let mut rng = StdRng::seed_from_u64(3);
        let flows: Vec<Flow> = (0..3)
            .map(|_| TorGenerator::default().generate(&mut rng))
            .collect();
        let batch = extract_features_batch(&flows, Layer::Tcp);
        for (bf, f) in batch.iter().zip(&flows) {
            assert_eq!(*bf, extract_features(f, Layer::Tcp));
        }
    }
}
