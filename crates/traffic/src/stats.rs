//! Small statistics helpers shared by the feature extractors and the
//! experiment harness (ECDFs, percentiles, summary statistics).

/// Summary statistics of a sample, in a fixed order used by the
/// 166-feature extractor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
    /// Population variance.
    pub var: f32,
    /// Maximum.
    pub max: f32,
    /// Minimum.
    pub min: f32,
    /// Median (p50).
    pub median: f32,
    /// 10th percentile.
    pub p10: f32,
    /// 25th percentile.
    pub p25: f32,
    /// 75th percentile.
    pub p75: f32,
    /// 90th percentile.
    pub p90: f32,
    /// Sum of all values.
    pub total: f32,
    /// Mean − median (a cheap skew proxy).
    pub skew_proxy: f32,
}

impl Summary {
    /// Number of scalar fields exposed by [`Summary::to_vec`].
    pub const LEN: usize = 12;

    /// Computes summary statistics; all-zero for an empty sample.
    pub fn of(values: &[f32]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let n = values.len() as f32;
        let mean = values.iter().sum::<f32>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = percentile_sorted(&sorted, 50.0);
        Summary {
            mean,
            std: var.sqrt(),
            var,
            max: *sorted.last().expect("nonempty"),
            min: sorted[0],
            median,
            p10: percentile_sorted(&sorted, 10.0),
            p25: percentile_sorted(&sorted, 25.0),
            p75: percentile_sorted(&sorted, 75.0),
            p90: percentile_sorted(&sorted, 90.0),
            total: values.iter().sum(),
            skew_proxy: mean - median,
        }
    }

    /// Fixed-order flattening (length [`Summary::LEN`]).
    pub fn to_vec(self) -> Vec<f32> {
        vec![
            self.mean,
            self.std,
            self.var,
            self.max,
            self.min,
            self.median,
            self.p10,
            self.p25,
            self.p75,
            self.p90,
            self.total,
            self.skew_proxy,
        ]
    }

    /// Field names matching [`Summary::to_vec`] order.
    pub fn names() -> [&'static str; Summary::LEN] {
        [
            "mean", "std", "var", "max", "min", "median", "p10", "p25", "p75", "p90", "total",
            "skew",
        ]
    }
}

/// Linear-interpolated percentile of a pre-sorted sample (`q` in `[0, 100]`).
pub fn percentile_sorted(sorted: &[f32], q: f32) -> f32 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Percentile of an unsorted sample.
pub fn percentile(values: &[f32], q: f32) -> f32 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_sorted(&sorted, q)
}

/// Empirical CDF evaluated at `points` for the given sample.
pub fn ecdf(values: &[f32], points: &[f32]) -> Vec<f32> {
    if values.is_empty() {
        return vec![0.0; points.len()];
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    points
        .iter()
        .map(|&p| {
            let idx = sorted.partition_point(|&v| v <= p);
            idx as f32 / sorted.len() as f32
        })
        .collect()
}

/// Histogram with `bins` equal-width bins over `[lo, hi]`; out-of-range
/// values are clamped into the edge bins. Counts are normalised to
/// fractions.
pub fn histogram(values: &[f32], lo: f32, hi: f32, bins: usize) -> Vec<f32> {
    assert!(bins > 0 && hi > lo, "histogram: invalid bin spec");
    let mut counts = vec![0.0f32; bins];
    if values.is_empty() {
        return counts;
    }
    let width = (hi - lo) / bins as f32;
    for &v in values {
        let idx = (((v - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1.0;
    }
    let n = values.len() as f32;
    counts.iter_mut().for_each(|c| *c /= n);
    counts
}

/// Mean of a sample (0 when empty).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

/// Population standard deviation (0 when empty).
pub fn std_dev(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / values.len() as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-6);
        assert!((s.median - 2.5).abs() < 1e-6);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.min, 1.0);
        assert!((s.total - 10.0).abs() < 1e-6);
        assert!((s.var - 1.25).abs() < 1e-6);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s, Summary::default());
        assert_eq!(s.to_vec(), vec![0.0; Summary::LEN]);
    }

    #[test]
    fn summary_vec_len_matches_names() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.to_vec().len(), Summary::LEN);
        assert_eq!(Summary::names().len(), Summary::LEN);
    }

    #[test]
    fn percentile_ordering_is_monotone() {
        let vals = vec![9.0, 1.0, 5.0, 3.0, 7.0];
        let p10 = percentile(&vals, 10.0);
        let p50 = percentile(&vals, 50.0);
        let p90 = percentile(&vals, 90.0);
        assert!(p10 <= p50 && p50 <= p90);
        assert_eq!(p50, 5.0);
    }

    #[test]
    fn percentile_extremes() {
        let vals = vec![2.0, 4.0, 6.0];
        assert_eq!(percentile(&vals, 0.0), 2.0);
        assert_eq!(percentile(&vals, 100.0), 6.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[42.0], 33.0), 42.0);
    }

    #[test]
    fn ecdf_is_monotone_and_bounded() {
        let vals = vec![1.0, 2.0, 2.0, 3.0];
        let pts = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let e = ecdf(&vals, &pts);
        assert_eq!(e, vec![0.0, 0.25, 0.75, 1.0, 1.0]);
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let vals = vec![0.1, 0.2, 0.5, 0.9, 1.5, -0.5];
        let h = histogram(&vals, 0.0, 1.0, 4);
        let sum: f32 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // clamped: -0.5 lands in bin 0, 1.5 in bin 3
        assert!(h[0] > 0.0 && h[3] > 0.0);
    }

    #[test]
    fn std_dev_known() {
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-6);
        assert_eq!(std_dev(&[]), 0.0);
    }
}
