//! Flow → numeric representations for the NN-based censors and the RL
//! agent.
//!
//! The paper (§5.1) tailors DF, SDAE and LSTM to consume the flow
//! representation of §3 — signed packet sizes plus inter-packet delays —
//! rather than their original direction-only inputs. [`FlowRepr`] holds the
//! normalisation constants and produces:
//!
//! * position-major fixed-length vectors (DF's Conv1d, SDAE's MLP);
//! * per-step 2-vectors (LSTM, the RL StateEncoder).

use crate::flow::Flow;
use crate::generate::Layer;

/// Normalisation + shaping configuration for model inputs.
#[derive(Debug, Clone, Copy)]
pub struct FlowRepr {
    /// Fixed sequence length for position-major encodings; longer flows are
    /// truncated, shorter flows zero-padded.
    pub max_len: usize,
    /// Size normaliser (bytes): signed sizes map to `[-1, 1]`.
    pub max_size: f32,
    /// Delay normaliser (ms): delays map to `[0, 1]` (clamped).
    pub max_delay_ms: f32,
}

impl FlowRepr {
    /// Channels per position (size, delay).
    pub const CHANNELS: usize = 2;

    /// TCP-layer preset (paper: sizes discretised against 1460 B).
    pub fn tcp() -> Self {
        Self {
            max_len: 64,
            max_size: 1460.0,
            max_delay_ms: 500.0,
        }
    }

    /// TLS-record-layer preset (paper: 16 KB records).
    pub fn tls() -> Self {
        Self {
            max_len: 64,
            max_size: 16384.0,
            max_delay_ms: 500.0,
        }
    }

    /// Preset for a [`Layer`].
    pub fn for_layer(layer: Layer) -> Self {
        match layer {
            Layer::Tcp => Self::tcp(),
            Layer::TlsRecord => Self::tls(),
        }
    }

    /// Normalised signed size in `[-1, 1]`.
    pub fn norm_size(&self, size: i32) -> f32 {
        (size as f32 / self.max_size).clamp(-1.0, 1.0)
    }

    /// Normalised delay in `[0, 1]`.
    pub fn norm_delay(&self, delay_ms: f32) -> f32 {
        (delay_ms / self.max_delay_ms).clamp(0.0, 1.0)
    }

    /// Width of the position-major encoding (`max_len * CHANNELS`).
    pub fn width(&self) -> usize {
        self.max_len * Self::CHANNELS
    }

    /// Position-major fixed-length encoding: `[s_0, d_0, s_1, d_1, …]`,
    /// zero-padded/truncated to [`FlowRepr::max_len`] packets.
    pub fn to_position_major(&self, flow: &Flow) -> Vec<f32> {
        let mut out = vec![0.0f32; self.width()];
        for (i, p) in flow.packets.iter().take(self.max_len).enumerate() {
            out[i * 2] = self.norm_size(p.size);
            out[i * 2 + 1] = self.norm_delay(p.delay_ms);
        }
        out
    }

    /// Per-packet `(size, delay)` normalised pairs (variable length), for
    /// recurrent consumers.
    pub fn to_steps(&self, flow: &Flow) -> Vec<[f32; 2]> {
        flow.packets
            .iter()
            .map(|p| [self.norm_size(p.size), self.norm_delay(p.delay_ms)])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Packet;

    fn flow() -> Flow {
        let mut f = Flow::new();
        f.push(Packet::outbound(730, 0.0));
        f.push(Packet::inbound(1460, 250.0));
        f
    }

    #[test]
    fn normalisation_ranges() {
        let r = FlowRepr::tcp();
        assert!((r.norm_size(730) - 0.5).abs() < 1e-6);
        assert!((r.norm_size(-1460) + 1.0).abs() < 1e-6);
        assert_eq!(r.norm_size(100_000), 1.0); // clamped
        assert!((r.norm_delay(250.0) - 0.5).abs() < 1e-6);
        assert_eq!(r.norm_delay(10_000.0), 1.0); // clamped
        assert_eq!(r.norm_delay(-5.0), 0.0);
    }

    #[test]
    fn position_major_layout_and_padding() {
        let r = FlowRepr {
            max_len: 4,
            max_size: 1460.0,
            max_delay_ms: 500.0,
        };
        let v = r.to_position_major(&flow());
        assert_eq!(v.len(), 8);
        assert!((v[0] - 0.5).abs() < 1e-6);
        assert_eq!(v[1], 0.0);
        assert!((v[2] + 1.0).abs() < 1e-6);
        assert!((v[3] - 0.5).abs() < 1e-6);
        // padding
        assert_eq!(&v[4..], &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn position_major_truncates_long_flows() {
        let r = FlowRepr {
            max_len: 1,
            max_size: 1460.0,
            max_delay_ms: 500.0,
        };
        let v = r.to_position_major(&flow());
        assert_eq!(v.len(), 2);
        assert!((v[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn steps_preserve_length() {
        let r = FlowRepr::tcp();
        let steps = r.to_steps(&flow());
        assert_eq!(steps.len(), 2);
        assert!((steps[1][0] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn layer_presets() {
        assert_eq!(FlowRepr::for_layer(Layer::Tcp).max_size, 1460.0);
        assert_eq!(FlowRepr::for_layer(Layer::TlsRecord).max_size, 16384.0);
    }
}
