//! Core traffic types: [`Packet`] and [`Flow`].
//!
//! Following the paper's §3 formulation, a flow is the tuple `S = (P, Φ)`:
//! a vector of packet sizes `P` (signed — positive sizes travel client →
//! server, negative sizes server → client, matching the tshark
//! preprocessing in §5.4) and a vector of inter-packet delays `Φ` in
//! milliseconds.

/// Direction of a packet relative to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → server ("+" in the paper).
    Outbound,
    /// Server → client ("−" in the paper).
    Inbound,
}

impl Direction {
    /// Sign multiplier used in the signed-size representation.
    pub fn sign(&self) -> i32 {
        match self {
            Direction::Outbound => 1,
            Direction::Inbound => -1,
        }
    }

    /// The opposite direction.
    pub fn flip(&self) -> Direction {
        match self {
            Direction::Outbound => Direction::Inbound,
            Direction::Inbound => Direction::Outbound,
        }
    }
}

/// One packet observation: signed size plus inter-packet delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Signed size in bytes; the sign encodes [`Direction`].
    pub size: i32,
    /// Delay since the previous packet in the flow, in milliseconds
    /// (0 for the first packet).
    pub delay_ms: f32,
}

impl Packet {
    /// Builds a packet from direction + unsigned size.
    pub fn new(direction: Direction, size: u32, delay_ms: f32) -> Self {
        assert!(size > 0, "Packet size must be positive");
        Self {
            size: direction.sign() * size as i32,
            delay_ms,
        }
    }

    /// Outbound helper.
    pub fn outbound(size: u32, delay_ms: f32) -> Self {
        Self::new(Direction::Outbound, size, delay_ms)
    }

    /// Inbound helper.
    pub fn inbound(size: u32, delay_ms: f32) -> Self {
        Self::new(Direction::Inbound, size, delay_ms)
    }

    /// Direction derived from the sign.
    pub fn direction(&self) -> Direction {
        if self.size >= 0 {
            Direction::Outbound
        } else {
            Direction::Inbound
        }
    }

    /// Absolute size in bytes.
    pub fn magnitude(&self) -> u32 {
        self.size.unsigned_abs()
    }
}

/// Class label used throughout the reproduction.
///
/// Note the polarity: *positive = sensitive* (tunnelled / to-be-blocked)
/// — the standard detection convention, which the metrics module follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Innocuous traffic the censor allows.
    Benign,
    /// Tunnelled/anti-censorship traffic the censor blocks.
    Sensitive,
}

impl Label {
    /// 0/1 encoding (1 = sensitive).
    pub fn as_u8(&self) -> u8 {
        match self {
            Label::Benign => 0,
            Label::Sensitive => 1,
        }
    }

    /// Decodes a 0/1 label.
    pub fn from_u8(v: u8) -> Label {
        if v == 0 {
            Label::Benign
        } else {
            Label::Sensitive
        }
    }
}

/// A bidirectional network flow: ordered packets with timing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Flow {
    /// Packets in transmission order.
    pub packets: Vec<Packet>,
}

impl Flow {
    /// Empty flow.
    pub fn new() -> Self {
        Self {
            packets: Vec::new(),
        }
    }

    /// Builds a flow from `(signed size, delay)` pairs.
    pub fn from_pairs(pairs: &[(i32, f32)]) -> Self {
        Self {
            packets: pairs
                .iter()
                .map(|&(size, delay_ms)| {
                    assert!(size != 0, "Flow packets must have nonzero size");
                    Packet { size, delay_ms }
                })
                .collect(),
        }
    }

    /// Builds a flow from emitted wire frames: `(direction, wire size,
    /// delay)` triples, as produced by a shaping dataplane. This is the
    /// bridge from a frame stream to the censor/feature pipeline — the
    /// resulting [`Flow`] feeds every existing classifier without ad-hoc
    /// conversion.
    ///
    /// # Panics
    /// Panics on a zero wire size (frames always carry at least a header).
    pub fn from_frames<I>(frames: I) -> Self
    where
        I: IntoIterator<Item = (Direction, u32, f32)>,
    {
        Self {
            packets: frames
                .into_iter()
                .map(|(dir, size, delay_ms)| Packet::new(dir, size, delay_ms))
                .collect(),
        }
    }

    /// Appends a packet.
    pub fn push(&mut self, p: Packet) {
        self.packets.push(p);
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the flow has no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Signed sizes vector `P`.
    pub fn sizes(&self) -> Vec<i32> {
        self.packets.iter().map(|p| p.size).collect()
    }

    /// Delays vector `Φ` in milliseconds.
    pub fn delays(&self) -> Vec<f32> {
        self.packets.iter().map(|p| p.delay_ms).collect()
    }

    /// Total bytes in the given direction.
    pub fn bytes(&self, dir: Direction) -> u64 {
        self.packets
            .iter()
            .filter(|p| p.direction() == dir)
            .map(|p| p.magnitude() as u64)
            .sum()
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.magnitude() as u64).sum()
    }

    /// Packet count in the given direction.
    pub fn count(&self, dir: Direction) -> usize {
        self.packets.iter().filter(|p| p.direction() == dir).count()
    }

    /// Flow duration: sum of all inter-packet delays (time from first to
    /// last packet), in milliseconds.
    pub fn duration_ms(&self) -> f32 {
        self.packets.iter().skip(1).map(|p| p.delay_ms).sum()
    }

    /// Truncates to the first `n` packets (prefix view used by censors that
    /// decide mid-flow).
    pub fn prefix(&self, n: usize) -> Flow {
        Flow {
            packets: self.packets[..n.min(self.packets.len())].to_vec(),
        }
    }

    /// Iterator over maximal same-direction runs ("bursts"), yielding
    /// `(direction, packet count, byte count, duration_ms)`.
    pub fn bursts(&self) -> Vec<(Direction, usize, u64, f32)> {
        let mut out = Vec::new();
        let mut iter = self.packets.iter();
        let Some(first) = iter.next() else {
            return out;
        };
        let mut dir = first.direction();
        let mut count = 1usize;
        let mut bytes = first.magnitude() as u64;
        let mut duration = 0.0f32;
        for p in iter {
            if p.direction() == dir {
                count += 1;
                bytes += p.magnitude() as u64;
                duration += p.delay_ms;
            } else {
                out.push((dir, count, bytes, duration));
                dir = p.direction();
                count = 1;
                bytes = p.magnitude() as u64;
                duration = 0.0;
            }
        }
        out.push((dir, count, bytes, duration));
        out
    }

    /// Delays between consecutive packets *in the same direction*
    /// (the quantity plotted in Figure 11).
    pub fn same_direction_gaps(&self, dir: Direction) -> Vec<f32> {
        let mut gaps = Vec::new();
        let mut elapsed_since_last: Option<f32> = None;
        for p in &self.packets {
            if p.direction() == dir {
                if let Some(e) = elapsed_since_last {
                    gaps.push(e + p.delay_ms);
                }
                elapsed_since_last = Some(0.0);
            } else if let Some(e) = elapsed_since_last.as_mut() {
                *e += p.delay_ms;
            }
        }
        gaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_flow() -> Flow {
        Flow::from_pairs(&[
            (500, 0.0),
            (-1448, 2.0),
            (-1448, 0.5),
            (300, 10.0),
            (-700, 3.0),
        ])
    }

    #[test]
    fn direction_from_sign() {
        let p = Packet::outbound(100, 0.0);
        assert_eq!(p.direction(), Direction::Outbound);
        assert_eq!(p.size, 100);
        let q = Packet::inbound(100, 0.0);
        assert_eq!(q.direction(), Direction::Inbound);
        assert_eq!(q.size, -100);
        assert_eq!(q.magnitude(), 100);
    }

    #[test]
    fn byte_and_count_accounting() {
        let f = sample_flow();
        assert_eq!(f.len(), 5);
        assert_eq!(f.bytes(Direction::Outbound), 800);
        assert_eq!(f.bytes(Direction::Inbound), 3596);
        assert_eq!(f.total_bytes(), 4396);
        assert_eq!(f.count(Direction::Outbound), 2);
        assert_eq!(f.count(Direction::Inbound), 3);
    }

    #[test]
    fn duration_ignores_first_packet_delay() {
        let f = sample_flow();
        assert!((f.duration_ms() - 15.5).abs() < 1e-6);
        let empty = Flow::new();
        assert_eq!(empty.duration_ms(), 0.0);
    }

    #[test]
    fn prefix_clamps() {
        let f = sample_flow();
        assert_eq!(f.prefix(2).len(), 2);
        assert_eq!(f.prefix(100).len(), 5);
        assert_eq!(f.prefix(0).len(), 0);
    }

    #[test]
    fn burst_segmentation() {
        let f = sample_flow();
        let bursts = f.bursts();
        assert_eq!(bursts.len(), 4);
        assert_eq!(bursts[0], (Direction::Outbound, 1, 500, 0.0));
        assert_eq!(bursts[1].0, Direction::Inbound);
        assert_eq!(bursts[1].1, 2);
        assert_eq!(bursts[1].2, 2896);
        assert_eq!(bursts[3], (Direction::Inbound, 1, 700, 0.0));
    }

    #[test]
    fn same_direction_gaps_accumulate_through_opposite_packets() {
        let f = sample_flow();
        // Outbound packets at t=0 and t=0+2+0.5+10=12.5 -> one gap of 12.5.
        let out_gaps = f.same_direction_gaps(Direction::Outbound);
        assert_eq!(out_gaps.len(), 1);
        assert!((out_gaps[0] - 12.5).abs() < 1e-6);
        // Inbound at t=2, t=2.5, t=15.5 -> gaps 0.5 and 13.0.
        let in_gaps = f.same_direction_gaps(Direction::Inbound);
        assert_eq!(in_gaps.len(), 2);
        assert!((in_gaps[0] - 0.5).abs() < 1e-6);
        assert!((in_gaps[1] - 13.0).abs() < 1e-6);
    }

    #[test]
    fn label_round_trip() {
        assert_eq!(Label::from_u8(Label::Sensitive.as_u8()), Label::Sensitive);
        assert_eq!(Label::from_u8(Label::Benign.as_u8()), Label::Benign);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_rejected() {
        let _ = Flow::from_pairs(&[(0, 1.0)]);
    }

    #[test]
    fn from_frames_builds_signed_packets() {
        let f = Flow::from_frames([
            (Direction::Outbound, 540u32, 0.0f32),
            (Direction::Inbound, 1452, 2.5),
            (Direction::Outbound, 4, 0.5),
        ]);
        assert_eq!(f.sizes(), vec![540, -1452, 4]);
        assert_eq!(f.delays(), vec![0.0, 2.5, 0.5]);
        assert_eq!(f.bytes(Direction::Inbound), 1452);
    }
}
