//! Synthetic traffic generators.
//!
//! The paper evaluates on two real captures (Tor and V2Ray crawls of the
//! Alexa top-25k, §5.4) that are not available here. These generators are
//! the documented substitution (DESIGN.md §2): they reproduce the exact
//! statistical signatures the paper identifies as the reason the censors
//! reach ≈0.99 F1:
//!
//! * **Tor** (TCP layer): "Tor traffic mostly consists of packets of
//!   (multiples of) 536 bytes, which is the size of an encapsulated onion
//!   cell" (§5.5.1);
//! * **V2Ray** (TLS-record layer): "the inner communications may involve a
//!   TLS handshake between browser and web server. This TLS-in-TLS pattern
//!   would not be witnessed in normal browsing traffic" (§5.5.1), with
//!   records up to the 16 KB TLS maximum;
//! * **HTTPS** (both layers): ordinary request/response browsing traffic
//!   without either signature.

use rand::Rng;

use crate::flow::{Flow, Packet};

/// Observation layer: determines the maximum transmission unit the censor
/// sees and the action range Amoeba must explore (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// TCP segments: payloads up to 1448 bytes (paper: 1448 discrete
    /// actions for TCP, discretised against 1460).
    Tcp,
    /// TLS records: up to 16384 bytes (paper: 16384 actions for TLS).
    TlsRecord,
}

impl Layer {
    /// Maximum payload unit in bytes.
    pub fn max_unit(&self) -> u32 {
        match self {
            Layer::Tcp => 1448,
            Layer::TlsRecord => 16384,
        }
    }

    /// Normalisation constant used when discretising actor outputs
    /// (`int(p * 1460)` for TCP per §4.3).
    pub fn action_scale(&self) -> f32 {
        match self {
            Layer::Tcp => 1460.0,
            Layer::TlsRecord => 16384.0,
        }
    }
}

/// Samples from a log-normal distribution parameterised by the *median*
/// (`exp(mu)`) and shape `sigma` — a good fit for inter-packet delays.
pub fn lognormal<R: Rng + ?Sized>(median_ms: f32, sigma: f32, rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    median_ms * (sigma * z).exp()
}

/// Common interface for flow generators.
pub trait TrafficGenerator {
    /// Samples one flow.
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Flow;
    /// The layer this generator's sizes live on.
    fn layer(&self) -> Layer;
}

/// Tor traffic observed at the TCP layer.
///
/// All payloads are onion cells of [`TorGenerator::cell_size`] bytes;
/// on-the-wire packets carry one or two coalesced cells (three would
/// exceed the TCP MSS).
#[derive(Debug, Clone)]
pub struct TorGenerator {
    /// Encapsulated onion-cell size as seen on the TCP layer (paper: 536).
    pub cell_size: u32,
    /// Range of request/response exchanges per flow.
    pub exchanges: (usize, usize),
    /// Range of downstream cells per response burst.
    pub burst_cells: (usize, usize),
    /// Median intra-burst gap (ms).
    pub intra_gap_ms: f32,
    /// Median inter-exchange gap (ms) — RTT plus think time.
    pub inter_gap_ms: f32,
    /// Probability that two cells coalesce into one packet.
    pub coalesce_prob: f64,
    /// Upstream SENDME-style cell every this many downstream cells.
    pub sendme_every: usize,
}

impl Default for TorGenerator {
    fn default() -> Self {
        Self {
            cell_size: 536,
            exchanges: (2, 6),
            burst_cells: (2, 14),
            intra_gap_ms: 0.4,
            inter_gap_ms: 60.0,
            coalesce_prob: 0.35,
            sendme_every: 10,
        }
    }
}

impl TrafficGenerator for TorGenerator {
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Flow {
        let mut flow = Flow::new();
        // Circuit setup: CREATE/CREATED-style cell exchange.
        flow.push(Packet::outbound(self.cell_size, 0.0));
        flow.push(Packet::inbound(
            self.cell_size,
            lognormal(self.inter_gap_ms, 0.4, rng),
        ));

        let exchanges = rng.gen_range(self.exchanges.0..=self.exchanges.1);
        let mut downstream_since_sendme = 0usize;
        for _ in 0..exchanges {
            // Request: one (occasionally two) upstream cells.
            flow.push(Packet::outbound(
                self.cell_size,
                lognormal(self.inter_gap_ms, 0.6, rng),
            ));
            if rng.gen_bool(0.15) {
                flow.push(Packet::outbound(
                    self.cell_size,
                    lognormal(self.intra_gap_ms, 0.5, rng),
                ));
            }
            // Response burst of cells, possibly coalesced in pairs.
            let mut cells = rng.gen_range(self.burst_cells.0..=self.burst_cells.1);
            let mut first = true;
            while cells > 0 {
                let coalesced = cells >= 2 && rng.gen_bool(self.coalesce_prob);
                let n_cells = if coalesced { 2 } else { 1 };
                let gap = if first {
                    lognormal(self.inter_gap_ms, 0.4, rng)
                } else {
                    lognormal(self.intra_gap_ms, 0.6, rng)
                };
                first = false;
                flow.push(Packet::inbound(self.cell_size * n_cells as u32, gap));
                cells -= n_cells;
                downstream_since_sendme += n_cells;
                if downstream_since_sendme >= self.sendme_every {
                    downstream_since_sendme = 0;
                    flow.push(Packet::outbound(
                        self.cell_size,
                        lognormal(self.intra_gap_ms, 0.5, rng),
                    ));
                }
            }
        }
        flow
    }

    fn layer(&self) -> Layer {
        Layer::Tcp
    }
}

/// Ordinary HTTPS browsing observed at the TCP layer (the benign class of
/// the Tor dataset).
#[derive(Debug, Clone)]
pub struct HttpsTcpGenerator {
    /// MSS-sized payload for bulk transfer.
    pub mss: u32,
    /// Range of request/response exchanges per flow.
    pub exchanges: (usize, usize),
    /// Range of full-MSS packets per response.
    pub burst_packets: (usize, usize),
    /// Request payload range (bytes).
    pub request_size: (u32, u32),
    /// Median intra-burst gap (ms).
    pub intra_gap_ms: f32,
    /// Median inter-exchange gap (ms).
    pub inter_gap_ms: f32,
}

impl Default for HttpsTcpGenerator {
    fn default() -> Self {
        Self {
            mss: 1448,
            exchanges: (2, 6),
            burst_packets: (1, 10),
            request_size: (90, 850),
            intra_gap_ms: 0.3,
            inter_gap_ms: 55.0,
        }
    }
}

impl TrafficGenerator for HttpsTcpGenerator {
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Flow {
        let mut flow = Flow::new();
        // Per-flow path MSS (clamp offload / PMTU variation seen in real
        // captures) and a per-flow "fill factor": how consistently the
        // server saturates segments (CDNs vary widely here).
        let mss = rng.gen_range(self.mss - 120..=self.mss);
        let partial_prob = rng.gen_range(0.05f64..0.45);

        // TLS handshake on the wire: ClientHello, ServerHello+cert burst,
        // client finished.
        flow.push(Packet::outbound(rng.gen_range(220..580), 0.0));
        let cert_bytes: u32 = rng.gen_range(2600..4600);
        let mut remaining = cert_bytes;
        let mut first = true;
        while remaining > 0 {
            let chunk = remaining.min(mss);
            let gap = if first {
                lognormal(self.inter_gap_ms, 0.4, rng)
            } else {
                lognormal(self.intra_gap_ms, 0.5, rng)
            };
            first = false;
            flow.push(Packet::inbound(chunk, gap));
            remaining -= chunk;
        }
        flow.push(Packet::outbound(
            rng.gen_range(60..320),
            lognormal(self.intra_gap_ms, 0.5, rng),
        ));

        let exchanges = rng.gen_range(self.exchanges.0..=self.exchanges.1);
        for _ in 0..exchanges {
            flow.push(Packet::outbound(
                rng.gen_range(self.request_size.0..=self.request_size.1),
                lognormal(self.inter_gap_ms, 0.6, rng),
            ));
            let full = rng.gen_range(self.burst_packets.0..=self.burst_packets.1);
            let mut first = true;
            for i in 0..full {
                let gap = if first {
                    lognormal(self.inter_gap_ms, 0.4, rng)
                } else {
                    lognormal(self.intra_gap_ms, 0.6, rng)
                };
                first = false;
                // Segments are mostly full but real stacks emit partial
                // segments mid-burst (Nagle off, record boundaries, cwnd).
                let size = if rng.gen_bool(partial_prob) {
                    rng.gen_range(mss / 4..mss)
                } else {
                    mss
                };
                flow.push(Packet::inbound(size, gap));
                // HTTP/2 window updates / TLS control records travel
                // upstream mid-burst.
                if i > 0 && rng.gen_bool(0.12) {
                    flow.push(Packet::outbound(
                        rng.gen_range(40..140),
                        lognormal(self.intra_gap_ms, 0.5, rng),
                    ));
                }
            }
            // Response tail: a partial segment.
            flow.push(Packet::inbound(
                rng.gen_range(60..mss),
                lognormal(self.intra_gap_ms, 0.6, rng),
            ));
        }
        flow
    }

    fn layer(&self) -> Layer {
        Layer::Tcp
    }
}

/// V2Ray TLS tunnelling observed at the TLS-record layer.
///
/// The tell-tale signature is TLS-in-TLS: shortly after the (outer)
/// connection starts carrying data, the censor sees a record exchange whose
/// sizes match an *inner* TLS handshake, followed by bulk records that can
/// reach the 16 KB maximum.
#[derive(Debug, Clone)]
pub struct V2RayGenerator {
    /// Range of request/response exchanges per flow.
    pub exchanges: (usize, usize),
    /// Range of response bytes per exchange.
    pub response_bytes: (u32, u32),
    /// Maximum record size (TLS: 16384).
    pub max_record: u32,
    /// Median intra-burst gap (ms); slightly above plain HTTPS because of
    /// the proxy hop.
    pub intra_gap_ms: f32,
    /// Median inter-exchange gap (ms).
    pub inter_gap_ms: f32,
}

impl Default for V2RayGenerator {
    fn default() -> Self {
        Self {
            exchanges: (2, 6),
            response_bytes: (4_000, 120_000),
            max_record: 16_384,
            intra_gap_ms: 0.9,
            inter_gap_ms: 75.0,
        }
    }
}

impl TrafficGenerator for V2RayGenerator {
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Flow {
        let mut flow = Flow::new();
        // Inner TLS handshake tunnelled through the outer channel:
        // inner ClientHello / ServerHello+cert / client kex+finished /
        // session ticket.
        flow.push(Packet::outbound(rng.gen_range(280..620), 0.0));
        flow.push(Packet::inbound(
            rng.gen_range(2900..4900),
            lognormal(self.inter_gap_ms, 0.4, rng),
        ));
        flow.push(Packet::outbound(
            rng.gen_range(260..720),
            lognormal(self.intra_gap_ms, 0.5, rng),
        ));
        flow.push(Packet::inbound(
            rng.gen_range(180..460),
            lognormal(self.intra_gap_ms, 0.5, rng),
        ));

        let exchanges = rng.gen_range(self.exchanges.0..=self.exchanges.1);
        for _ in 0..exchanges {
            flow.push(Packet::outbound(
                rng.gen_range(240..1300),
                lognormal(self.inter_gap_ms, 0.6, rng),
            ));
            let mut remaining: u32 = rng.gen_range(self.response_bytes.0..=self.response_bytes.1);
            let mut first = true;
            while remaining > 0 {
                // Bulk transfers fill records to the maximum; tails are
                // whatever is left.
                let record = if remaining >= self.max_record {
                    self.max_record
                } else {
                    remaining
                };
                let gap = if first {
                    lognormal(self.inter_gap_ms, 0.4, rng)
                } else {
                    lognormal(self.intra_gap_ms, 0.6, rng)
                };
                first = false;
                flow.push(Packet::inbound(record, gap));
                remaining -= record;
            }
        }
        flow
    }

    fn layer(&self) -> Layer {
        Layer::TlsRecord
    }
}

/// Ordinary HTTPS browsing observed at the TLS-record layer (the benign
/// class of the V2Ray dataset): no inner handshake, records shaped by
/// HTTP response chunking rather than tunnel framing.
#[derive(Debug, Clone)]
pub struct HttpsTlsGenerator {
    /// Range of request/response exchanges per flow.
    pub exchanges: (usize, usize),
    /// Range of response bytes per exchange.
    pub response_bytes: (u32, u32),
    /// Typical record size cap used by web servers (many use 4–8 KB
    /// record chunking rather than the 16 KB maximum).
    pub record_chunk: (u32, u32),
    /// Median intra-burst gap (ms).
    pub intra_gap_ms: f32,
    /// Median inter-exchange gap (ms).
    pub inter_gap_ms: f32,
}

impl Default for HttpsTlsGenerator {
    fn default() -> Self {
        Self {
            exchanges: (2, 7),
            response_bytes: (2_000, 90_000),
            record_chunk: (3_800, 8_400),
            intra_gap_ms: 0.5,
            inter_gap_ms: 55.0,
        }
    }
}

impl TrafficGenerator for HttpsTlsGenerator {
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Flow {
        let mut flow = Flow::new();
        let exchanges = rng.gen_range(self.exchanges.0..=self.exchanges.1);
        for e in 0..exchanges {
            let gap = if e == 0 {
                0.0
            } else {
                lognormal(self.inter_gap_ms, 0.6, rng)
            };
            flow.push(Packet::outbound(rng.gen_range(90..900), gap));
            let chunk = rng.gen_range(self.record_chunk.0..=self.record_chunk.1);
            let mut remaining: u32 = rng.gen_range(self.response_bytes.0..=self.response_bytes.1);
            let mut first = true;
            while remaining > 0 {
                let record = remaining.min(chunk);
                let gap = if first {
                    lognormal(self.inter_gap_ms, 0.4, rng)
                } else {
                    lognormal(self.intra_gap_ms, 0.6, rng)
                };
                first = false;
                flow.push(Packet::inbound(record, gap));
                remaining -= record;
            }
        }
        flow
    }

    fn layer(&self) -> Layer {
        Layer::TlsRecord
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Direction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tor_flows_are_cell_multiples() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = TorGenerator::default();
        for _ in 0..20 {
            let flow = g.generate(&mut rng);
            assert!(!flow.is_empty());
            for p in &flow.packets {
                assert_eq!(
                    p.magnitude() % g.cell_size,
                    0,
                    "packet {} not a cell multiple",
                    p.size
                );
            }
        }
    }

    #[test]
    fn tor_flows_are_bidirectional() {
        let mut rng = StdRng::seed_from_u64(2);
        let flow = TorGenerator::default().generate(&mut rng);
        assert!(flow.count(Direction::Outbound) > 0);
        assert!(flow.count(Direction::Inbound) > 0);
        // First packet has no delay.
        assert_eq!(flow.packets[0].delay_ms, 0.0);
    }

    #[test]
    fn https_tcp_respects_mss() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = HttpsTcpGenerator::default();
        for _ in 0..20 {
            let flow = g.generate(&mut rng);
            for p in &flow.packets {
                assert!(p.magnitude() <= g.mss, "packet {} exceeds MSS", p.size);
            }
        }
    }

    #[test]
    fn https_tcp_differs_from_tor_in_size_signature() {
        let mut rng = StdRng::seed_from_u64(4);
        let tor = TorGenerator::default();
        let https = HttpsTcpGenerator::default();
        let tor_cellish: usize = (0..30)
            .map(|_| {
                tor.generate(&mut rng)
                    .packets
                    .iter()
                    .filter(|p| p.magnitude() % 536 == 0)
                    .count()
            })
            .sum();
        let https_cellish: usize = (0..30)
            .map(|_| {
                https
                    .generate(&mut rng)
                    .packets
                    .iter()
                    .filter(|p| p.magnitude() % 536 == 0)
                    .count()
            })
            .sum();
        assert!(
            tor_cellish > https_cellish * 5,
            "tor {tor_cellish} https {https_cellish}"
        );
    }

    #[test]
    fn v2ray_records_within_tls_limit_and_hit_maximum() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = V2RayGenerator::default();
        let mut saw_max = false;
        for _ in 0..30 {
            let flow = g.generate(&mut rng);
            for p in &flow.packets {
                assert!(p.magnitude() <= 16_384);
                if p.magnitude() == 16_384 {
                    saw_max = true;
                }
            }
        }
        assert!(saw_max, "bulk V2Ray transfers should fill records to 16 KB");
    }

    #[test]
    fn v2ray_shows_inner_handshake_pattern() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = V2RayGenerator::default();
        let flow = g.generate(&mut rng);
        // out, in(large), out, in(small): the TLS-in-TLS fingerprint.
        let dirs: Vec<Direction> = flow.packets[..4].iter().map(|p| p.direction()).collect();
        assert_eq!(
            dirs,
            vec![
                Direction::Outbound,
                Direction::Inbound,
                Direction::Outbound,
                Direction::Inbound
            ]
        );
        assert!(flow.packets[1].magnitude() > 2000);
        assert!(flow.packets[3].magnitude() < 600);
    }

    #[test]
    fn https_tls_lacks_inner_handshake() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = HttpsTlsGenerator::default();
        for _ in 0..20 {
            let flow = g.generate(&mut rng);
            // Second record is already a large response, not a handshake
            // roundtrip followed by a small client record.
            let first_in = flow
                .packets
                .iter()
                .position(|p| p.direction() == Direction::Inbound)
                .expect("has inbound");
            // After the first inbound burst there is no small outbound
            // record below 90 bytes (inner finished messages are absent).
            assert!(flow.packets[first_in].magnitude() >= 500);
        }
    }

    #[test]
    fn lognormal_is_positive_and_scales_with_median() {
        let mut rng = StdRng::seed_from_u64(8);
        let small: f32 = (0..200).map(|_| lognormal(1.0, 0.5, &mut rng)).sum();
        let large: f32 = (0..200).map(|_| lognormal(50.0, 0.5, &mut rng)).sum();
        assert!(small > 0.0);
        assert!(large > small * 10.0);
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let g = TorGenerator::default();
        let f1 = g.generate(&mut StdRng::seed_from_u64(99));
        let f2 = g.generate(&mut StdRng::seed_from_u64(99));
        assert_eq!(f1, f2);
    }

    #[test]
    fn layers_expose_action_scales() {
        assert_eq!(Layer::Tcp.action_scale(), 1460.0);
        assert_eq!(Layer::TlsRecord.action_scale(), 16384.0);
        assert_eq!(Layer::Tcp.max_unit(), 1448);
        assert_eq!(Layer::TlsRecord.max_unit(), 16384);
    }
}
