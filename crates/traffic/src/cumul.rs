//! CUMUL features [Panchenko et al., NDSS'16].
//!
//! CUMUL represents a flow by `n` linearly interpolated points of its
//! cumulative signed-size trace, prefixed by four aggregate counters
//! (incoming/outgoing packet and byte totals). The paper uses this
//! representation with an RBF-kernel SVM as the "CUMUL" censoring
//! classifier.

use crate::flow::{Direction, Flow};

/// Number of interpolation points used by the paper-scale CUMUL censor.
pub const DEFAULT_POINTS: usize = 100;

/// Extracts the CUMUL feature vector: `[n_in, n_out, bytes_in, bytes_out]`
/// followed by `n_points` interpolated cumulative-sum samples.
///
/// Length is always `n_points + 4`; empty flows produce all-zero vectors.
pub fn cumul_features(flow: &Flow, n_points: usize) -> Vec<f32> {
    assert!(
        n_points >= 2,
        "cumul_features: need at least 2 interpolation points"
    );
    let mut out = Vec::with_capacity(n_points + 4);
    out.push(flow.count(Direction::Inbound) as f32);
    out.push(flow.count(Direction::Outbound) as f32);
    out.push(flow.bytes(Direction::Inbound) as f32);
    out.push(flow.bytes(Direction::Outbound) as f32);

    if flow.is_empty() {
        out.extend(std::iter::repeat_n(0.0, n_points));
        return out;
    }

    let mut trace = Vec::with_capacity(flow.len());
    let mut acc = 0.0f32;
    for p in &flow.packets {
        acc += p.size as f32;
        trace.push(acc);
    }
    for i in 0..n_points {
        let pos = i as f32 / (n_points - 1) as f32 * (trace.len() - 1) as f32;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f32;
        out.push(trace[lo] * (1.0 - frac) + trace[hi] * frac);
    }
    out
}

/// Batch helper.
pub fn cumul_features_batch(flows: &[Flow], n_points: usize) -> Vec<Vec<f32>> {
    flows.iter().map(|f| cumul_features(f, n_points)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Packet;

    #[test]
    fn length_is_points_plus_four() {
        let flow = Flow::from_pairs(&[(100, 0.0), (-50, 1.0)]);
        assert_eq!(cumul_features(&flow, 100).len(), 104);
        assert_eq!(cumul_features(&flow, 10).len(), 14);
    }

    #[test]
    fn counters_are_correct() {
        let mut flow = Flow::new();
        flow.push(Packet::outbound(300, 0.0));
        flow.push(Packet::inbound(500, 1.0));
        flow.push(Packet::inbound(200, 1.0));
        let f = cumul_features(&flow, 10);
        assert_eq!(f[0], 2.0); // n_in
        assert_eq!(f[1], 1.0); // n_out
        assert_eq!(f[2], 700.0); // bytes_in
        assert_eq!(f[3], 300.0); // bytes_out
    }

    #[test]
    fn interpolation_endpoints_match_trace() {
        let flow = Flow::from_pairs(&[(100, 0.0), (-300, 1.0), (50, 1.0)]);
        // cumulative: 100, -200, -150
        let f = cumul_features(&flow, 5);
        assert_eq!(f[4], 100.0);
        assert_eq!(*f.last().unwrap(), -150.0);
    }

    #[test]
    fn single_packet_flow_is_constant_trace() {
        let flow = Flow::from_pairs(&[(42, 0.0)]);
        let f = cumul_features(&flow, 8);
        assert!(f[4..].iter().all(|&v| v == 42.0));
    }

    #[test]
    fn empty_flow_is_zero() {
        let f = cumul_features(&Flow::new(), 10);
        assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn direction_flip_changes_trace_shape() {
        let up = Flow::from_pairs(&[(100, 0.0), (100, 1.0), (100, 1.0)]);
        let down = Flow::from_pairs(&[(-100, 0.0), (-100, 1.0), (-100, 1.0)]);
        let fu = cumul_features(&up, 6);
        let fd = cumul_features(&down, 6);
        assert!(fu[5..].iter().all(|&v| v > 0.0));
        assert!(fd[5..].iter().all(|&v| v < 0.0));
    }
}
