//! Stage tracing: fixed-size flight recorder + Chrome-trace exposition.
//!
//! Each shard drive loop owns a [`FlightRecorder`] — a bounded ring of
//! [`TraceEvent`]s timestamped against the run's epoch `Instant`. The
//! ring overwrites oldest-first, so memory is fixed at
//! `capacity × size_of::<TraceEvent>()` regardless of run length, and
//! the recorder always holds the *most recent* window of activity —
//! exactly what you want when a run dies: [`ScopedPanicDump`] dumps the
//! panicking thread's recorder to stderr as Chrome-trace JSON so the
//! last moments of scheduling are visible post-mortem.
//!
//! Recording is push-only into thread-owned memory (the recorder lives
//! in a thread-local while a drive loop runs); nothing here blocks,
//! allocates after construction, or is observable by the data path —
//! the zero-perturbation obligation from the crate docs.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// Which pipeline stage (or scheduler action) an event covers. The
/// names are the Chrome-trace event names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Fused inference pass (companion thread when pipelined).
    Infer,
    /// Framing / impairment / censor verdicts (driver thread).
    Frame,
    /// Emitted-frame push-back into encoder state.
    Emit,
    /// A work item stolen from another shard's deque.
    Steal,
}

impl StageKind {
    /// Stable event name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Infer => "infer",
            StageKind::Frame => "frame",
            StageKind::Emit => "emit",
            StageKind::Steal => "steal",
        }
    }
}

/// One complete-span trace event. `Copy` and fixed-size so ring writes
/// are a store, not an allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub stage: StageKind,
    /// Home shard of the work item.
    pub shard: u32,
    /// Shard id of the thread that executed the stage (differs from
    /// `shard` when the item was stolen).
    pub executor: u32,
    /// Work-item sequence number within its home shard.
    pub seq: u64,
    /// Start time, nanoseconds since the run epoch.
    pub t0_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Sessions in the work item's chunk.
    pub batch: u32,
}

/// Bounded ring buffer of trace events (capacity 0 = recording off).
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    buf: Vec<TraceEvent>,
    cap: usize,
    head: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// True when the capacity is zero and pushes are no-ops.
    pub fn is_disabled(&self) -> bool {
        self.cap == 0
    }

    /// Records an event, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % self.cap;
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }

    /// Events overwritten since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Renders events as a Chrome-trace (`chrome://tracing` / Perfetto)
/// JSON array of complete (`"ph":"X"`) events. Timestamps convert from
/// nanoseconds to the format's microseconds; `tid` is the executing
/// shard so stolen work visibly runs on the thief's row, and `args`
/// carry the home shard, sequence number, and batch size.
pub fn trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":0,\"tid\":{},\"args\":{{\"shard\":{},\"seq\":{},\"batch\":{}}}}}",
            ev.stage.name(),
            ev.t0_ns as f64 / 1e3,
            ev.dur_ns as f64 / 1e3,
            ev.executor,
            ev.shard,
            ev.seq,
            ev.batch,
        ));
    }
    out.push_str("\n]");
    out
}

thread_local! {
    static RECORDER: RefCell<Option<FlightRecorder>> = const { RefCell::new(None) };
}

/// Installs `rec` as this thread's active recorder (returned later by
/// [`take_recorder`]). A drive loop calls this at start so the panic
/// hook can find the ring without any cross-thread plumbing.
pub fn install_recorder(rec: FlightRecorder) {
    RECORDER.with(|r| *r.borrow_mut() = Some(rec));
}

/// Removes and returns this thread's recorder, if any.
pub fn take_recorder() -> Option<FlightRecorder> {
    RECORDER.with(|r| r.borrow_mut().take())
}

/// Runs `f` against this thread's recorder; no-op when none is
/// installed.
#[inline]
pub fn with_recorder<F: FnOnce(&mut FlightRecorder)>(f: F) {
    RECORDER.with(|r| {
        if let Ok(mut guard) = r.try_borrow_mut() {
            if let Some(rec) = guard.as_mut() {
                f(rec);
            }
        }
    });
}

static DUMP_SCOPES: AtomicUsize = AtomicUsize::new(0);
static HOOK_INSTALL: Once = Once::new();

/// While alive, a panic on any thread with an installed recorder dumps
/// that thread's flight-recorder contents to stderr as Chrome-trace
/// JSON before unwinding continues.
///
/// The underlying hook chains the previously installed hook and is
/// installed once per process, never removed — scopes only toggle an
/// activity counter, so overlapping scopes on parallel test threads
/// can't race a hook swap.
pub struct ScopedPanicDump;

impl ScopedPanicDump {
    pub fn new() -> Self {
        HOOK_INSTALL.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if DUMP_SCOPES.load(Ordering::SeqCst) > 0 {
                    // try_borrow via with_recorder: survives panics that
                    // fire while the recorder itself is borrowed.
                    with_recorder(|rec| {
                        if !rec.is_empty() {
                            eprintln!(
                                "=== amoeba-telemetry flight recorder ({} events, {} dropped) ===",
                                rec.len(),
                                rec.dropped()
                            );
                            eprintln!("{}", trace_json(&rec.events()));
                            eprintln!("=== end flight recorder ===");
                        }
                    });
                }
                prev(info);
            }));
        });
        DUMP_SCOPES.fetch_add(1, Ordering::SeqCst);
        ScopedPanicDump
    }
}

impl Default for ScopedPanicDump {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ScopedPanicDump {
    fn drop(&mut self) {
        DUMP_SCOPES.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            stage: StageKind::Infer,
            shard: 0,
            executor: 0,
            seq,
            t0_ns: seq * 1_000,
            dur_ns: 500,
            batch: 8,
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_window() {
        let mut rec = FlightRecorder::new(4);
        for s in 0..10 {
            rec.push(ev(s));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let seqs: Vec<u64> = rec.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest-first, newest window");
    }

    #[test]
    fn zero_capacity_recorder_is_inert() {
        let mut rec = FlightRecorder::new(0);
        assert!(rec.is_disabled());
        rec.push(ev(0));
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
        assert_eq!(trace_json(&rec.events()), "[\n]");
    }

    #[test]
    fn trace_json_is_chrome_trace_shaped() {
        let mut e = ev(3);
        e.stage = StageKind::Steal;
        e.executor = 2;
        let json = trace_json(&[e]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"steal\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":3.000"));
        assert!(json.contains("\"dur\":0.500"));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"args\":{\"shard\":0,\"seq\":3,\"batch\":8}"));
    }

    #[test]
    fn thread_local_install_take_roundtrip() {
        let mut rec = FlightRecorder::new(8);
        rec.push(ev(1));
        install_recorder(rec);
        with_recorder(|r| r.push(ev(2)));
        let back = take_recorder().expect("recorder was installed");
        assert_eq!(back.len(), 2);
        assert!(take_recorder().is_none());
        // with_recorder after take is a no-op, not a panic.
        with_recorder(|r| r.push(ev(3)));
    }

    #[test]
    fn panic_dump_emits_the_ring_to_stderr() {
        let _scope = ScopedPanicDump::new();
        let mut rec = FlightRecorder::new(8);
        rec.push(ev(7));
        install_recorder(rec);
        let result = std::panic::catch_unwind(|| panic!("boom"));
        assert!(result.is_err());
        // The recorder survives the dump for post-mortem retrieval.
        let back = take_recorder().expect("recorder still installed");
        assert_eq!(back.len(), 1);
    }
}
