//! Log-linear (HDR-style) latency histograms with bounded memory.
//!
//! A [`Histogram`] buckets non-negative `u64` values (the serving stack
//! records nanoseconds) into [`BUCKETS`] (= 976) fixed buckets: values
//! below [`SUB`] (= 16) get one bucket each, and every power-of-two range
//! above that is subdivided into [`SUB`] linear sub-buckets. The bucket
//! width at value `v` is therefore at most `v / 16` — quantile estimates
//! carry a relative error of at most `1/16` (≈ 6.25%, the bucket width),
//! which is the bound the serving crate's histogram-vs-exact unit test
//! pins. Memory is a flat `976 × 8` bytes however many samples are
//! recorded — the replacement for the dataplane's historically unbounded
//! per-frame latency `Vec`s.
//!
//! Recording is a handful of integer ops on plain (non-atomic) cells:
//! each shard thread owns its histogram and the engine merges them
//! deterministically afterwards, so the hot path takes no locks and
//! perturbs nothing (see the crate docs for the zero-perturbation
//! obligation).

/// Linear sub-buckets per power-of-two range (and the count of dedicated
/// single-value buckets at the bottom).
pub const SUB: u64 = 16;
const SUB_BITS: u32 = 4;

/// Total bucket count: `16` unit buckets + `(64 - 4)` octaves × `16`
/// sub-buckets.
pub const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Bucket index of a value. Monotone in `v`; exact below [`SUB`].
#[inline]
fn index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let mantissa = (v >> (exp - SUB_BITS)) - SUB;
        ((u64::from(exp - SUB_BITS) + 1) * SUB + mantissa) as usize
    }
}

/// Inclusive lower bound of bucket `i` (the smallest value mapping to it).
#[inline]
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        i
    } else {
        let group = i / SUB - 1; // 0 for [16, 32), 1 for [32, 64), …
        let mantissa = i % SUB;
        (SUB + mantissa) << group
    }
}

/// Exclusive upper bound of bucket `i`.
#[inline]
fn bucket_high(i: usize) -> u64 {
    if i + 1 < BUCKETS {
        bucket_low(i + 1)
    } else {
        u64::MAX
    }
}

/// A bounded log-linear histogram over `u64` values.
///
/// `Default` is the empty histogram. Merging ([`Histogram::merge`]) is
/// element-wise addition, so any partition of a sample stream across
/// shards merges to the same histogram — recording is order- and
/// grouping-independent by construction.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

impl Histogram {
    /// The empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a microsecond reading (as the serving stack measures
    /// stage wall-clocks) at nanosecond bucket resolution. Negative and
    /// NaN inputs saturate to zero, `+∞` (and anything ≥ 2⁶⁴ ns) to
    /// `u64::MAX` — the explicit saturation the unit tests pin, rather
    /// than leaning on `f64 as u64` cast semantics for the edges.
    #[inline]
    pub fn record_us(&mut self, us: f32) {
        let ns = f64::from(us) * 1e3;
        // `f64::max(NaN, 0.0)` happens to return 0.0, but spell the NaN
        // edge out: a poisoned timing read records as 0, never as junk.
        let ns = if ns.is_nan() { 0.0 } else { ns.max(0.0) };
        self.record(if ns >= u64::MAX as f64 {
            u64::MAX
        } else {
            ns as u64
        });
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of recorded values (sums are not bucketed).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Type-7 (linear-interpolation) quantile estimate, the same
    /// estimator as `ServeReport`'s exact-sample percentile path: the
    /// fractional rank `h = q · (n - 1)` (`q` clamped to `[0, 1]`) is
    /// split into its integer neighbours and the bucket-estimated values
    /// at ranks `⌊h⌋` and `⌈h⌉` are blended by the fractional part.
    /// Sharing the estimator means the serving report's exact→histogram
    /// fallback cannot shift a reported percentile by more than the
    /// bucket resolution when `exact_frame_stats` flips. NaN when empty.
    ///
    /// Each rank's value is the midpoint of the bucket holding that
    /// sample, clamped into the exact observed `[min, max]`, so the
    /// estimate differs from the exact type-7 value by at most one bucket
    /// width (relative error ≤ `1/16`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let h = (self.count - 1) as f64 * q.clamp(0.0, 1.0);
        let lo_rank = h.floor() as u64;
        let hi_rank = h.ceil() as u64;
        let lo = self.value_at_rank(lo_rank);
        if hi_rank == lo_rank {
            return lo;
        }
        let hi = self.value_at_rank(hi_rank);
        lo + (hi - lo) * h.fract()
    }

    /// Bucket-estimated value of the rank-`rank` sample (0-based, in
    /// sorted order): the midpoint of its bucket, clamped into the exact
    /// observed `[min, max]`.
    fn value_at_rank(&self, rank: u64) -> f64 {
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                let low = bucket_low(i);
                let high = bucket_high(i);
                let mid = low + (high - low) / 2;
                return (mid.clamp(self.min, self.max)) as f64;
            }
        }
        self.max as f64
    }

    /// [`Histogram::quantile`] read back in microseconds for histograms
    /// recorded via [`Histogram::record_us`].
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.quantile(q) / 1e3
    }

    /// Element-wise merge (the deterministic k-way aggregation step).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(inclusive low, exclusive high, count)`, in
    /// ascending value order — the exposition-layer iteration.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), bucket_high(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn indexing_is_monotone_and_in_bounds() {
        let mut prev = 0usize;
        for v in 0..4096u64 {
            let i = index(v);
            assert!(i >= prev, "index must be monotone at {v}");
            assert!(i < BUCKETS);
            assert!(bucket_low(i) <= v && v < bucket_high(i), "v={v} i={i}");
            prev = i;
        }
        assert_eq!(index(u64::MAX), BUCKETS - 1);
        // The first SUB buckets are exact.
        for v in 0..SUB {
            assert_eq!(bucket_low(index(v)), v);
            assert_eq!(bucket_high(index(v)), v + 1);
        }
    }

    #[test]
    fn bucket_width_is_bounded_by_a_sixteenth() {
        for v in [16u64, 100, 1_000, 123_456, 10_000_000_000] {
            let i = index(v);
            let width = bucket_high(i) - bucket_low(i);
            assert!(
                width <= v / SUB + 1,
                "bucket width {width} at {v} exceeds v/16"
            );
        }
    }

    #[test]
    fn empty_histogram_is_nan_and_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert!(h.quantile(0.5).is_nan());
        assert!(h.mean().is_nan());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn quantiles_track_exact_values_within_bucket_width() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut h = Histogram::new();
        let mut samples: Vec<u64> = (0..5_000)
            .map(|_| {
                // Mix of magnitudes, like µs latencies recorded in ns.
                let exp = rng.gen_range(0..30u32);
                rng.gen_range(0..(1u64 << exp).max(2))
            })
            .collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            // Exact type-7 value over the sorted samples — the estimator
            // both this histogram and the serving report's exact path use.
            let rank = (samples.len() - 1) as f64 * q;
            let (lo, hi) = (
                samples[rank.floor() as usize] as f64,
                samples[rank.ceil() as usize] as f64,
            );
            let exact = lo + (hi - lo) * rank.fract();
            let est = h.quantile(q);
            // Both interpolation endpoints are bucket-midpoints within one
            // bucket width of their sample; the blend inherits the larger
            // endpoint's bound.
            let tol = hi / SUB as f64 + 1.0;
            assert!(
                (est - exact).abs() <= tol,
                "q={q}: estimate {est} vs exact {exact} (tol {tol})"
            );
        }
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.min(), samples[0]);
        assert_eq!(h.max(), *samples.last().unwrap());
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let mut rng = StdRng::seed_from_u64(4);
        let (mut a, mut b, mut whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..2_000u64 {
            let v = rng.gen_range(0..1_000_000u64);
            whole.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn record_us_roundtrips_through_nanoseconds() {
        let mut h = Histogram::new();
        h.record_us(1.5); // 1500 ns
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 1500);
        let q = h.quantile_us(0.5);
        assert!((q - 1.5).abs() <= 1.5 / 16.0 + 1e-3, "{q}");
        // Negative and non-finite clamp instead of panicking.
        h.record_us(-3.0);
        h.record_us(f32::NAN);
        h.record_us(f32::INFINITY);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    /// Negative inputs saturate to exactly zero — never to a small
    /// positive bucket, never a panic.
    #[test]
    fn record_us_saturates_negative_to_zero() {
        let mut h = Histogram::new();
        for v in [-0.001f32, -1.0, -1e20, f32::NEG_INFINITY] {
            h.record_us(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    /// NaN inputs saturate to exactly zero, by the explicit branch (not
    /// the accident of `f64::max` NaN propagation or `as` casts).
    #[test]
    fn record_us_saturates_nan_to_zero() {
        let mut h = Histogram::new();
        h.record_us(f32::NAN);
        h.record_us(-f32::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    /// The sampled estimator is exactly type-7: on single-count unit
    /// buckets (values < SUB, which the histogram stores exactly) the
    /// estimate must equal the interpolated sample value, fractional part
    /// included.
    #[test]
    fn quantile_interpolates_type7_exactly_on_unit_buckets() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 9] {
            h.record(v);
        }
        // h = 9q: q=0.25 -> rank 2.25 -> 2.25 exactly.
        assert_eq!(h.quantile(0.25), 2.25);
        assert_eq!(h.quantile(0.5), 4.5);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 9.0);
        // Out-of-range q clamps.
        assert_eq!(h.quantile(-3.0), 0.0);
        assert_eq!(h.quantile(7.0), 9.0);
    }
}
