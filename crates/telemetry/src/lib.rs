//! # amoeba-telemetry — zero-perturbation serving observability
//!
//! Counters, latency histograms, stage tracing, and a flight recorder
//! for the Amoeba serving stack. The crate is deliberately dependency-
//! free and engine-agnostic: the serve crate records into these types;
//! this crate only aggregates and renders.
//!
//! ## Obligations for future instrumentation
//!
//! Every probe added here or in the serve crate MUST uphold two
//! contracts, both pinned by tests in `amoeba-serve`:
//!
//! 1. **Zero perturbation.** Telemetry must never change what the
//!    engine emits on the wire. Wire output is bit-identical with
//!    telemetry on, off, or ring sizes varied (proptest
//!    `telemetry_invariance`). Concretely: never touch a session RNG,
//!    never reorder or gate scheduling on a telemetry value, never
//!    take a lock a data-path thread can contend on. Counters are
//!    plain `u64` cells owned by one shard thread ([`Counters`],
//!    [`ShardTelemetry`]); histograms are thread-owned arrays
//!    ([`Histogram`]); trace events go to a thread-local ring
//!    ([`FlightRecorder`]). The only synchronization in this crate is
//!    in the opt-in panic-dump hook, which is outside the data path.
//!
//! 2. **Deterministic aggregation.** The k-way merge folds shard
//!    telemetry in shard-index order, per-tenant maps are `BTreeMap`s,
//!    and trace events sort by `(t0_ns, shard, seq)` — a given set of
//!    shard results always renders to the same bytes. Per-session
//!    quantities (frames, verdicts, evasions, sessions) are
//!    grouping-invariant sums; scheduler quantities (ticks, batches,
//!    steals, queue depths) legitimately vary with shard count and are
//!    documented as such on [`Counters`].
//!
//! Overhead is budgeted too: CI's `telemetry-overhead` gate fails the
//! build if full telemetry costs more than 2% throughput.
//!
//! ## Exposition
//!
//! [`TelemetrySnapshot`] renders as Prometheus text
//! ([`TelemetrySnapshot::to_prometheus_text`], format pinned by a
//! snapshot test), machine-readable JSON
//! ([`TelemetrySnapshot::to_json`]), and Chrome-trace JSON
//! ([`TelemetrySnapshot::trace_json`], loadable in `chrome://tracing`
//! or Perfetto). See the README "Observability" section for the metric
//! catalogue.

pub mod counters;
pub mod histogram;
pub mod snapshot;
pub mod trace;

pub use counters::{Counters, ShardTelemetry, TenantCounters, TenantKey};
pub use histogram::Histogram;
pub use snapshot::{TelemetrySnapshot, QUANTILES};
pub use trace::{
    install_recorder, take_recorder, trace_json, with_recorder, FlightRecorder, ScopedPanicDump,
    StageKind, TraceEvent,
};
