//! Run-level aggregation and exposition.
//!
//! [`TelemetrySnapshot`] is the deterministic fold of every shard's
//! [`ShardTelemetry`], exposed three ways:
//!
//! - [`TelemetrySnapshot::to_prometheus_text`] — Prometheus text
//!   exposition (format pinned by a snapshot test; renames must update
//!   the golden text deliberately),
//! - [`TelemetrySnapshot::to_json`] — machine-readable JSON for bench
//!   harnesses,
//! - [`TelemetrySnapshot::trace_json`] — Chrome-trace JSON of the
//!   flight-recorder contents.
//!
//! Aggregation folds shards in index order and sorts trace events by
//! `(t0_ns, shard, seq)`, so a given set of shard telemetries always
//! renders to the same bytes.

use crate::counters::{Counters, ShardTelemetry, TenantCounters, TenantKey};
use crate::histogram::Histogram;
use crate::trace::{self, TraceEvent};
use std::collections::BTreeMap;

/// Quantiles exposed on every latency summary.
pub const QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 1.0];

/// The engine-wide telemetry fold for one completed run.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    pub counters: Counters,
    pub tenants: BTreeMap<TenantKey, TenantCounters>,
    /// Queue-wait latency (enqueue → batch start), nanoseconds.
    pub queue_hist: Histogram,
    /// Compute latency (inference + framing), nanoseconds.
    pub compute_hist: Histogram,
    /// End-to-end frame latency (enqueue → absorbed), nanoseconds.
    pub latency_hist: Histogram,
    /// Flight-recorder events from all shards, sorted by
    /// `(t0_ns, shard, seq)`.
    pub events: Vec<TraceEvent>,
    /// Ring overwrites across all shards.
    pub dropped_events: u64,
    /// Run wall-clock, seconds.
    pub wall_seconds: f64,
    /// Shards the run used.
    pub shards: u64,
}

impl TelemetrySnapshot {
    /// Folds per-shard telemetry (in index order) into a snapshot.
    pub fn aggregate(shards: &[ShardTelemetry], wall_seconds: f64) -> Self {
        let mut folded = ShardTelemetry::default();
        for s in shards {
            folded.merge(s);
        }
        folded
            .events
            .sort_by_key(|e| (e.t0_ns, e.shard, e.seq, e.executor));
        TelemetrySnapshot {
            counters: folded.counters,
            tenants: folded.tenants,
            queue_hist: folded.queue_hist,
            compute_hist: folded.compute_hist,
            latency_hist: folded.latency_hist,
            events: folded.events,
            dropped_events: folded.dropped_events,
            wall_seconds,
            shards: shards.len() as u64,
        }
    }

    /// Chrome-trace JSON of the flight-recorder events.
    pub fn trace_json(&self) -> String {
        trace::trace_json(&self.events)
    }

    /// Prometheus text exposition. Counter and gauge names are part of
    /// the crate's public contract — see the snapshot test.
    pub fn to_prometheus_text(&self) -> String {
        let c = &self.counters;
        let mut out = String::with_capacity(4096);
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        counter(
            "amoeba_serve_ticks_total",
            "Drive-loop iterations summed over shards.",
            c.ticks,
        );
        counter(
            "amoeba_serve_batches_total",
            "Inference batches executed.",
            c.batches,
        );
        counter(
            "amoeba_serve_stolen_batches_total",
            "Batches executed away from their home shard.",
            c.stolen_batches,
        );
        counter(
            "amoeba_serve_absorbs_total",
            "Work items absorbed into their home shard.",
            c.absorbs,
        );
        counter(
            "amoeba_serve_absorbs_out_of_order_total",
            "Absorbs that arrived ahead of sequence and were parked.",
            c.absorbs_out_of_order,
        );
        counter(
            "amoeba_serve_frames_total",
            "Wire frames emitted across all sessions.",
            c.frames,
        );
        counter(
            "amoeba_serve_sessions_total",
            "Sessions driven to completion.",
            c.sessions,
        );
        counter(
            "amoeba_serve_trace_events_dropped_total",
            "Flight-recorder ring overwrites.",
            self.dropped_events,
        );
        let mut gauge = |name: &str, help: &str, v: String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        gauge(
            "amoeba_serve_queue_depth_max",
            "Highest per-shard ready-queue depth observed.",
            c.max_queue_depth.to_string(),
        );
        gauge(
            "amoeba_serve_shards",
            "Shards the run used.",
            self.shards.to_string(),
        );
        gauge(
            "amoeba_serve_wall_seconds",
            "Run wall-clock in seconds.",
            fmt_f64(self.wall_seconds),
        );
        for (name, help, field) in [
            (
                "amoeba_serve_tenant_frames_total",
                "Wire frames emitted per tenant.",
                0usize,
            ),
            (
                "amoeba_serve_tenant_verdicts_total",
                "Censor verdicts issued per tenant.",
                1,
            ),
            (
                "amoeba_serve_tenant_evasions_total",
                "Sessions that finished evading, per tenant.",
                2,
            ),
            (
                "amoeba_serve_tenant_sessions_total",
                "Sessions completed per tenant.",
                3,
            ),
            (
                "amoeba_serve_tenant_teardowns_total",
                "Sessions torn down mid-stream by the censor program, per tenant.",
                4,
            ),
            (
                "amoeba_serve_tenant_verdict_queries_total",
                "Censor-program observations (Allow included) per tenant.",
                5,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (k, t) in &self.tenants {
                let v = [
                    t.frames,
                    t.verdicts,
                    t.evasions,
                    t.sessions,
                    t.teardowns,
                    t.verdict_queries,
                ][field];
                out.push_str(&format!(
                    "{name}{{policy=\"{}\",censor=\"{}\"}} {v}\n",
                    k.policy, k.censor
                ));
            }
        }
        for (name, help, hist) in [
            (
                "amoeba_serve_frame_queue_us",
                "Queue-wait latency (enqueue to batch start) in microseconds.",
                &self.queue_hist,
            ),
            (
                "amoeba_serve_frame_compute_us",
                "Compute latency (inference + framing) in microseconds.",
                &self.compute_hist,
            ),
            (
                "amoeba_serve_frame_latency_us",
                "End-to-end frame latency in microseconds.",
                &self.latency_hist,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} summary\n"));
            if !hist.is_empty() {
                for q in QUANTILES {
                    out.push_str(&format!(
                        "{name}{{quantile=\"{q}\"}} {}\n",
                        fmt_f64(hist.quantile_us(q))
                    ));
                }
            }
            out.push_str(&format!(
                "{name}_sum {}\n{name}_count {}\n",
                fmt_f64(hist.sum() as f64 / 1e3),
                hist.count()
            ));
        }
        out
    }

    /// Machine-readable JSON (hand-rolled; empty histograms render
    /// `null` quantiles since NaN is not valid JSON).
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let mut out = String::with_capacity(2048);
        out.push_str("{\n  \"counters\": {");
        out.push_str(&format!(
            "\"ticks\": {}, \"batches\": {}, \"stolen_batches\": {}, \
             \"absorbs\": {}, \"absorbs_out_of_order\": {}, \"frames\": {}, \
             \"sessions\": {}, \"max_queue_depth\": {}",
            c.ticks,
            c.batches,
            c.stolen_batches,
            c.absorbs,
            c.absorbs_out_of_order,
            c.frames,
            c.sessions,
            c.max_queue_depth
        ));
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"wall_seconds\": {},\n  \"shards\": {},\n",
            json_f64(self.wall_seconds),
            self.shards
        ));
        out.push_str("  \"tenants\": [");
        for (i, (k, t)) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"policy\": {}, \"censor\": {}, \"frames\": {}, \
                 \"verdicts\": {}, \"evasions\": {}, \"sessions\": {}, \
                 \"teardowns\": {}, \"verdict_queries\": {}}}",
                k.policy,
                k.censor,
                t.frames,
                t.verdicts,
                t.evasions,
                t.sessions,
                t.teardowns,
                t.verdict_queries
            ));
        }
        out.push_str("],\n  \"histograms\": {");
        for (i, (name, hist)) in [
            ("frame_queue_us", &self.queue_hist),
            ("frame_compute_us", &self.compute_hist),
            ("frame_latency_us", &self.latency_hist),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p100\": {}}}",
                hist.count(),
                json_f64(hist.sum() as f64 / 1e3),
                json_f64(hist.min() as f64 / 1e3),
                json_f64(hist.max() as f64 / 1e3),
                json_f64(hist.quantile_us(0.5)),
                json_f64(hist.quantile_us(0.9)),
                json_f64(hist.quantile_us(0.99)),
                json_f64(hist.quantile_us(1.0)),
            ));
        }
        out.push_str(&format!(
            "}},\n  \"trace\": {{\"events\": {}, \"dropped\": {}}}\n}}\n",
            self.events.len(),
            self.dropped_events
        ));
        out
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StageKind;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut a = ShardTelemetry {
            counters: Counters {
                ticks: 4,
                batches: 6,
                stolen_batches: 1,
                absorbs: 6,
                absorbs_out_of_order: 1,
                frames: 24,
                sessions: 3,
                max_queue_depth: 5,
            },
            ..ShardTelemetry::default()
        };
        // Values below 16 ns land in exact unit buckets, so the type-7
        // interpolated quantiles are exact and the golden text is stable
        // by construction.
        for v in [10, 10, 12, 14] {
            a.queue_hist.record(v);
            a.compute_hist.record(v);
            a.latency_hist.record(2 * v);
        }
        *a.tenant_mut(TenantKey {
            policy: 0,
            censor: 0,
        }) = TenantCounters {
            frames: 16,
            verdicts: 16,
            evasions: 2,
            sessions: 2,
            teardowns: 0,
            verdict_queries: 16,
        };
        *a.tenant_mut(TenantKey {
            policy: 1,
            censor: 2,
        }) = TenantCounters {
            frames: 8,
            verdicts: 8,
            evasions: 0,
            sessions: 1,
            teardowns: 1,
            verdict_queries: 8,
        };
        a.events.push(TraceEvent {
            stage: StageKind::Infer,
            shard: 0,
            executor: 0,
            seq: 0,
            t0_ns: 2_000,
            dur_ns: 1_000,
            batch: 3,
        });
        let mut b = ShardTelemetry::default();
        b.events.push(TraceEvent {
            stage: StageKind::Frame,
            shard: 1,
            executor: 1,
            seq: 0,
            t0_ns: 1_000,
            dur_ns: 500,
            batch: 3,
        });
        TelemetrySnapshot::aggregate(&[a, b], 1.5)
    }

    /// Snapshot test: the Prometheus exposition is pinned byte-for-byte.
    /// Renaming a metric or reordering families must update this golden
    /// text deliberately.
    #[test]
    fn prometheus_exposition_format_is_pinned() {
        let text = sample_snapshot().to_prometheus_text();
        let expected = "\
# HELP amoeba_serve_ticks_total Drive-loop iterations summed over shards.
# TYPE amoeba_serve_ticks_total counter
amoeba_serve_ticks_total 4
# HELP amoeba_serve_batches_total Inference batches executed.
# TYPE amoeba_serve_batches_total counter
amoeba_serve_batches_total 6
# HELP amoeba_serve_stolen_batches_total Batches executed away from their home shard.
# TYPE amoeba_serve_stolen_batches_total counter
amoeba_serve_stolen_batches_total 1
# HELP amoeba_serve_absorbs_total Work items absorbed into their home shard.
# TYPE amoeba_serve_absorbs_total counter
amoeba_serve_absorbs_total 6
# HELP amoeba_serve_absorbs_out_of_order_total Absorbs that arrived ahead of sequence and were parked.
# TYPE amoeba_serve_absorbs_out_of_order_total counter
amoeba_serve_absorbs_out_of_order_total 1
# HELP amoeba_serve_frames_total Wire frames emitted across all sessions.
# TYPE amoeba_serve_frames_total counter
amoeba_serve_frames_total 24
# HELP amoeba_serve_sessions_total Sessions driven to completion.
# TYPE amoeba_serve_sessions_total counter
amoeba_serve_sessions_total 3
# HELP amoeba_serve_trace_events_dropped_total Flight-recorder ring overwrites.
# TYPE amoeba_serve_trace_events_dropped_total counter
amoeba_serve_trace_events_dropped_total 0
# HELP amoeba_serve_queue_depth_max Highest per-shard ready-queue depth observed.
# TYPE amoeba_serve_queue_depth_max gauge
amoeba_serve_queue_depth_max 5
# HELP amoeba_serve_shards Shards the run used.
# TYPE amoeba_serve_shards gauge
amoeba_serve_shards 2
# HELP amoeba_serve_wall_seconds Run wall-clock in seconds.
# TYPE amoeba_serve_wall_seconds gauge
amoeba_serve_wall_seconds 1.5
# HELP amoeba_serve_tenant_frames_total Wire frames emitted per tenant.
# TYPE amoeba_serve_tenant_frames_total counter
amoeba_serve_tenant_frames_total{policy=\"0\",censor=\"0\"} 16
amoeba_serve_tenant_frames_total{policy=\"1\",censor=\"2\"} 8
# HELP amoeba_serve_tenant_verdicts_total Censor verdicts issued per tenant.
# TYPE amoeba_serve_tenant_verdicts_total counter
amoeba_serve_tenant_verdicts_total{policy=\"0\",censor=\"0\"} 16
amoeba_serve_tenant_verdicts_total{policy=\"1\",censor=\"2\"} 8
# HELP amoeba_serve_tenant_evasions_total Sessions that finished evading, per tenant.
# TYPE amoeba_serve_tenant_evasions_total counter
amoeba_serve_tenant_evasions_total{policy=\"0\",censor=\"0\"} 2
amoeba_serve_tenant_evasions_total{policy=\"1\",censor=\"2\"} 0
# HELP amoeba_serve_tenant_sessions_total Sessions completed per tenant.
# TYPE amoeba_serve_tenant_sessions_total counter
amoeba_serve_tenant_sessions_total{policy=\"0\",censor=\"0\"} 2
amoeba_serve_tenant_sessions_total{policy=\"1\",censor=\"2\"} 1
# HELP amoeba_serve_tenant_teardowns_total Sessions torn down mid-stream by the censor program, per tenant.
# TYPE amoeba_serve_tenant_teardowns_total counter
amoeba_serve_tenant_teardowns_total{policy=\"0\",censor=\"0\"} 0
amoeba_serve_tenant_teardowns_total{policy=\"1\",censor=\"2\"} 1
# HELP amoeba_serve_tenant_verdict_queries_total Censor-program observations (Allow included) per tenant.
# TYPE amoeba_serve_tenant_verdict_queries_total counter
amoeba_serve_tenant_verdict_queries_total{policy=\"0\",censor=\"0\"} 16
amoeba_serve_tenant_verdict_queries_total{policy=\"1\",censor=\"2\"} 8
# HELP amoeba_serve_frame_queue_us Queue-wait latency (enqueue to batch start) in microseconds.
# TYPE amoeba_serve_frame_queue_us summary
amoeba_serve_frame_queue_us{quantile=\"0.5\"} 0.011
amoeba_serve_frame_queue_us{quantile=\"0.9\"} 0.0134
amoeba_serve_frame_queue_us{quantile=\"0.99\"} 0.01394
amoeba_serve_frame_queue_us{quantile=\"1\"} 0.014
amoeba_serve_frame_queue_us_sum 0.046
amoeba_serve_frame_queue_us_count 4
# HELP amoeba_serve_frame_compute_us Compute latency (inference + framing) in microseconds.
# TYPE amoeba_serve_frame_compute_us summary
amoeba_serve_frame_compute_us{quantile=\"0.5\"} 0.011
amoeba_serve_frame_compute_us{quantile=\"0.9\"} 0.0134
amoeba_serve_frame_compute_us{quantile=\"0.99\"} 0.01394
amoeba_serve_frame_compute_us{quantile=\"1\"} 0.014
amoeba_serve_frame_compute_us_sum 0.046
amoeba_serve_frame_compute_us_count 4
# HELP amoeba_serve_frame_latency_us End-to-end frame latency in microseconds.
# TYPE amoeba_serve_frame_latency_us summary
amoeba_serve_frame_latency_us{quantile=\"0.5\"} 0.022
amoeba_serve_frame_latency_us{quantile=\"0.9\"} 0.0268
amoeba_serve_frame_latency_us{quantile=\"0.99\"} 0.02788
amoeba_serve_frame_latency_us{quantile=\"1\"} 0.028
amoeba_serve_frame_latency_us_sum 0.092
amoeba_serve_frame_latency_us_count 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn aggregation_sorts_events_and_sums_shards() {
        let snap = sample_snapshot();
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.events.len(), 2);
        assert!(snap.events[0].t0_ns <= snap.events[1].t0_ns);
        assert_eq!(snap.events[0].shard, 1, "earlier event sorts first");
        let json = snap.trace_json();
        assert!(json.contains("\"name\":\"frame\""));
        assert!(json.contains("\"name\":\"infer\""));
    }

    #[test]
    fn json_exposition_is_parseable_shape() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"ticks\": 4"));
        assert!(json.contains("\"frame_latency_us\""));
        assert!(json.contains("\"p50\": 0.022"));
        assert!(json.contains("\"tenants\": [{\"policy\": 0"));
        // Empty snapshot renders null quantiles, never NaN.
        let empty = TelemetrySnapshot::default();
        let j = empty.to_json();
        assert!(!j.contains("NaN"));
        assert!(j.contains("\"p50\": null"));
        // Empty snapshot Prometheus text omits quantile lines but keeps
        // _sum/_count so scrapers see the family.
        let p = empty.to_prometheus_text();
        assert!(p.contains("amoeba_serve_frame_queue_us_count 0"));
        assert!(!p.contains("amoeba_serve_frame_queue_us{quantile"));
    }
}
