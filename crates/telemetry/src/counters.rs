//! Shard-local counters and their deterministic aggregation.
//!
//! Every field here is a plain `u64` cell owned by exactly one shard
//! thread for the duration of a run — no atomics, no locks, no
//! cross-thread sharing on the hot path. Shards hand their
//! [`ShardTelemetry`] back with their report, and the engine folds them
//! in shard order at the k-way merge: addition for flow counters,
//! `max` for high-water marks, histogram merges for latency. The fold
//! order is fixed, so the aggregate is deterministic for a given shard
//! assignment and every quantity that must be grouping-invariant
//! (anything derived from per-session work, not scheduling) is a plain
//! sum over a fixed multiset.

use crate::histogram::Histogram;
use crate::trace::TraceEvent;
use std::collections::BTreeMap;

/// Engine-level flow and scheduler counters.
///
/// Scheduling-dependent fields (`ticks`, `batches`, `stolen_batches`,
/// `absorbs_out_of_order`, `max_queue_depth`) legitimately vary with
/// shard count / pipelining / stealing; per-session fields (`frames`,
/// `sessions`, and everything in [`TenantCounters`]) do not.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Drive-loop iterations (tick barriers crossed), summed over shards.
    pub ticks: u64,
    /// Inference batches executed.
    pub batches: u64,
    /// Batches executed by a shard other than their home shard.
    pub stolen_batches: u64,
    /// Work items absorbed back into their home shard.
    pub absorbs: u64,
    /// Absorbs that arrived ahead of sequence and had to be parked.
    pub absorbs_out_of_order: u64,
    /// Wire frames emitted across all sessions.
    pub frames: u64,
    /// Sessions driven to completion.
    pub sessions: u64,
    /// Highest per-shard ready-queue depth observed (max over shards).
    pub max_queue_depth: u64,
}

impl Counters {
    /// Folds another shard's counters into this one (sums, except the
    /// high-water mark which takes the max).
    pub fn merge(&mut self, other: &Counters) {
        self.ticks += other.ticks;
        self.batches += other.batches;
        self.stolen_batches += other.stolen_batches;
        self.absorbs += other.absorbs;
        self.absorbs_out_of_order += other.absorbs_out_of_order;
        self.frames += other.frames;
        self.sessions += other.sessions;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
    }
}

/// A `(policy, censor)` tenant identity. Ordered so per-tenant maps
/// iterate (and therefore aggregate and expose) in a fixed order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TenantKey {
    pub policy: usize,
    pub censor: usize,
}

/// Per-tenant feedback counters — the signal a future online-adaptation
/// loop consumes (ROADMAP item 5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Wire frames emitted by this tenant's sessions.
    pub frames: u64,
    /// Censor verdicts issued against this tenant's frames — decisions
    /// other than `Allow` (scores, blocks, resets).
    pub verdicts: u64,
    /// Sessions that finished evading (not blocked midstream, not torn
    /// down, final score below the 0.5 detection threshold).
    pub evasions: u64,
    /// Sessions completed.
    pub sessions: u64,
    /// Sessions the censor program tore down mid-stream (`Reset`).
    pub teardowns: u64,
    /// Censor-program observations, `Allow` included — every call into
    /// the program, so `verdict_queries >= verdicts` always holds.
    pub verdict_queries: u64,
}

impl TenantCounters {
    /// Element-wise sum.
    pub fn merge(&mut self, other: &TenantCounters) {
        self.frames += other.frames;
        self.verdicts += other.verdicts;
        self.evasions += other.evasions;
        self.sessions += other.sessions;
        self.teardowns += other.teardowns;
        self.verdict_queries += other.verdict_queries;
    }
}

/// Everything one shard records over a run: counters, latency
/// histograms, per-tenant feedback, and the flight-recorder contents.
///
/// Constructed per shard thread, mutated only by its owner, and handed
/// back by value — the type system enforces the no-sharing discipline.
#[derive(Clone, Debug, Default)]
pub struct ShardTelemetry {
    pub counters: Counters,
    /// Queue-wait latency (enqueue → batch start), nanoseconds.
    pub queue_hist: Histogram,
    /// Compute latency (inference + framing stages), nanoseconds.
    pub compute_hist: Histogram,
    /// End-to-end frame latency (enqueue → absorbed), nanoseconds.
    pub latency_hist: Histogram,
    /// Per-tenant feedback counters, keyed and iterated in fixed order.
    pub tenants: BTreeMap<TenantKey, TenantCounters>,
    /// Flight-recorder events surviving in the ring at run end, oldest
    /// first. Empty when tracing is off.
    pub events: Vec<TraceEvent>,
    /// Events overwritten in the ring before the run ended.
    pub dropped_events: u64,
}

impl ShardTelemetry {
    /// Bumps a tenant counter cell via `f` (creating the zero entry on
    /// first touch).
    #[inline]
    pub fn tenant_mut(&mut self, key: TenantKey) -> &mut TenantCounters {
        self.tenants.entry(key).or_default()
    }

    /// Folds `other` into `self` — the deterministic per-shard merge
    /// step. Events concatenate in fold order; the snapshot layer sorts
    /// them by timestamp before exposition.
    pub fn merge(&mut self, other: &ShardTelemetry) {
        self.counters.merge(&other.counters);
        self.queue_hist.merge(&other.queue_hist);
        self.compute_hist.merge(&other.compute_hist);
        self.latency_hist.merge(&other.latency_hist);
        for (k, v) in &other.tenants {
            self.tenants.entry(*k).or_default().merge(v);
        }
        self.events.extend(other.events.iter().copied());
        self.dropped_events += other.dropped_events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_sums_and_maxes() {
        let mut a = Counters {
            ticks: 3,
            batches: 10,
            stolen_batches: 1,
            absorbs: 10,
            absorbs_out_of_order: 2,
            frames: 100,
            sessions: 4,
            max_queue_depth: 7,
        };
        let b = Counters {
            ticks: 5,
            batches: 20,
            stolen_batches: 0,
            absorbs: 20,
            absorbs_out_of_order: 0,
            frames: 50,
            sessions: 2,
            max_queue_depth: 3,
        };
        a.merge(&b);
        assert_eq!(a.ticks, 8);
        assert_eq!(a.batches, 30);
        assert_eq!(a.frames, 150);
        assert_eq!(a.sessions, 6);
        assert_eq!(a.max_queue_depth, 7, "high-water mark takes the max");
    }

    #[test]
    fn shard_merge_is_associative_on_tenants() {
        let k = TenantKey {
            policy: 0,
            censor: 1,
        };
        let mut a = ShardTelemetry::default();
        a.tenant_mut(k).frames = 5;
        let mut b = ShardTelemetry::default();
        b.tenant_mut(k).frames = 7;
        b.tenant_mut(TenantKey {
            policy: 1,
            censor: 0,
        })
        .evasions = 2;
        a.merge(&b);
        assert_eq!(a.tenants[&k].frames, 12);
        assert_eq!(a.tenants.len(), 2);
        // BTreeMap iteration order is the fixed (policy, censor) order.
        let keys: Vec<_> = a.tenants.keys().copied().collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
