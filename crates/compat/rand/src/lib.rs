//! Vendored offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, implementing the subset of the 0.8 API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched; this crate keeps the exact import paths
//! (`rand::Rng`, `rand::SeedableRng`, `rand::rngs::StdRng`,
//! `rand::seq::SliceRandom`) working against a deterministic
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! Streams are **not** bit-compatible with the upstream `rand` crate; every
//! consumer in this workspace only relies on seeded determinism *within* a
//! build, which this implementation guarantees.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// (mirrors upstream `rand`'s behaviour in spirit).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A value from the "standard" distribution: uniform `[0, 1)` for
    /// floats, full range for integers, fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution (see [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Ranges usable with [`Rng::gen_range`].
///
/// Mirroring upstream, this is implemented generically for `Range<T>` /
/// `RangeInclusive<T>` over every [`SampleUniform`] `T`, which is what
/// lets the compiler infer unsuffixed literal types from context (e.g.
/// `center + rng.gen_range(-0.6..0.6)` with `center: f32`).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform-over-range sampler.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Draws a uniform integer in `[0, bound)` without modulo bias
/// (Lemire's widening-multiply rejection method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        // Accept unless `low` falls in the biased region `[0, 2^64 % bound)`
        // (the `low >= bound` shortcut avoids the `%` in the common case).
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not bit-compatible with upstream `rand::rngs::StdRng` (ChaCha12);
    /// all consumers rely only on seeded determinism.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Alias kept for API compatibility: upstream's small fast generator.
    pub type SmallRng = StdRng;
}

/// Slice helpers mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A fresh generator seeded from system entropy (time + a counter).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    rngs::StdRng::seed_from_u64(
        nanos
            ^ COUNTER
                .fetch_add(1, Ordering::Relaxed)
                .wrapping_mul(0x9E37_79B9),
    )
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: i32 = rng.gen_range(-5..7);
            assert!((-5..7).contains(&x));
            let y: usize = rng.gen_range(3..=3);
            assert_eq!(y, 3);
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice in order"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).expect("nonempty") as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
