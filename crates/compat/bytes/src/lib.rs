//! Vendored offline stand-in for the
//! [`bytes`](https://crates.io/crates/bytes) crate, implementing the
//! subset of the 1.x API this workspace's binary codecs use: the [`Buf`] /
//! [`BufMut`] cursor traits over `&[u8]` / `Vec<u8>` and a minimal
//! [`BytesMut`] growable buffer.
//!
//! All multi-byte accessors use network byte order (big-endian), matching
//! upstream's un-suffixed methods.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

macro_rules! buf_get {
    ($(#[$doc:meta] $name:ident -> $t:ty),* $(,)?) => {$(
        #[$doc]
        fn $name(&mut self) -> $t {
            const N: usize = std::mem::size_of::<$t>();
            let mut bytes = [0u8; N];
            bytes.copy_from_slice(&self.chunk()[..N]);
            self.advance(N);
            <$t>::from_be_bytes(bytes)
        }
    )*};
}

/// Read cursor over a contiguous byte buffer.
///
/// # Panics
/// The `get_*` accessors panic when fewer than `size_of::<T>()` bytes
/// remain; check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    buf_get! {
        /// Reads one byte.
        get_u8 -> u8,
        /// Reads a big-endian `u16`.
        get_u16 -> u16,
        /// Reads a big-endian `u32`.
        get_u32 -> u32,
        /// Reads a big-endian `u64`.
        get_u64 -> u64,
        /// Reads a big-endian `i32`.
        get_i32 -> i32,
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

macro_rules! buf_put {
    ($(#[$doc:meta] $name:ident($t:ty)),* $(,)?) => {$(
        #[$doc]
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.to_be_bytes());
        }
    )*};
}

/// Append cursor over a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    buf_put! {
        /// Appends one byte.
        put_u8(u8),
        /// Appends a big-endian `u16`.
        put_u16(u16),
        /// Appends a big-endian `u32`.
        put_u32(u32),
        /// Appends a big-endian `u64`.
        put_u64(u64),
        /// Appends a big-endian `i32`.
        put_i32(i32),
    }

    /// Appends a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, returning the underlying `Vec`.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_accessors() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_i32(-42);
        buf.put_f32(1.5);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 4 + 4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i32(), -42);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn encoding_is_big_endian() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u16(0x0102);
        assert_eq!(v, [0x01, 0x02]);
    }

    #[test]
    #[should_panic]
    fn reading_past_end_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
