//! Vendored offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! implementing the subset of the 0.5 API this workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both forms).
//!
//! Timing model: after a warm-up period, each benchmark collects
//! `sample_size` samples, each timing a batch of iterations sized so one
//! sample takes roughly `measurement_time / sample_size`; the mean, median
//! and minimum per-iteration times are printed. There is no statistical
//! regression analysis or HTML report — the numbers are for quick local
//! comparisons (the ISSUE-level speedup assertions live in regular tests).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Controls how [`Bencher::iter_batched`] amortises setup cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches per setup.
    SmallInput,
    /// Large inputs: a handful of iterations per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

impl BatchSize {
    fn iters_per_setup(self) -> u64 {
        match self {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 4,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Collected timings for one benchmark.
#[derive(Debug, Clone, Default)]
struct Samples {
    /// Per-iteration time of each sample, in nanoseconds.
    per_iter_ns: Vec<f64>,
}

impl Samples {
    fn report(&self, name: &str) {
        if self.per_iter_ns.is_empty() {
            println!("{name:<45} (no samples)");
            return;
        }
        let mut sorted = self.per_iter_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mean = self.per_iter_ns.iter().sum::<f64>() / self.per_iter_ns.len() as f64;
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        println!(
            "{name:<45} mean {:>12} median {:>12} min {:>12} ({} samples)",
            fmt_ns(mean),
            fmt_ns(median),
            fmt_ns(min),
            sorted.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Drives timing loops inside [`Criterion::bench_function`].
pub struct Bencher<'a> {
    criterion: &'a Criterion,
    samples: Samples,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let cfg = self.criterion;
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < cfg.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        let target_sample_ns =
            cfg.measurement_time.as_nanos() as f64 / cfg.sample_size.max(1) as f64;
        let iters_per_sample = ((target_sample_ns / est_ns) as u64).clamp(1, 1 << 24);

        for _ in 0..cfg.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples.per_iter_ns.push(ns);
        }
    }

    /// Times `routine` on inputs produced by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let cfg = self.criterion;
        let per_setup = size.iters_per_setup();

        // Warm-up: one batch.
        let mut inputs: Vec<I> = (0..per_setup).map(|_| setup()).collect();
        let warm_start = Instant::now();
        for input in inputs.drain(..) {
            black_box(routine(input));
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / per_setup as f64).max(1.0);
        let target_sample_ns =
            cfg.measurement_time.as_nanos() as f64 / cfg.sample_size.max(1) as f64;
        let batches_per_sample =
            ((target_sample_ns / (est_ns * per_setup as f64)) as u64).clamp(1, 4096);

        for _ in 0..cfg.sample_size {
            let mut elapsed = Duration::ZERO;
            let mut iters = 0u64;
            for _ in 0..batches_per_sample {
                let batch: Vec<I> = (0..per_setup).map(|_| setup()).collect();
                let start = Instant::now();
                for input in batch {
                    black_box(routine(input));
                }
                elapsed += start.elapsed();
                iters += per_setup;
            }
            self.samples
                .per_iter_ns
                .push(elapsed.as_nanos() as f64 / iters.max(1) as f64);
        }
    }
}

/// Benchmark harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up period before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies a substring filter from CLI args (set by
    /// [`criterion_main!`]); benches whose name doesn't match are skipped.
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            criterion: self,
            samples: Samples::default(),
        };
        f(&mut bencher);
        bencher.samples.report(name);
        self
    }

    /// Hook kept for API compatibility (upstream writes reports here).
    pub fn final_summary(&mut self) {}
}

/// Parses the arguments cargo-bench passes to the harness, returning an
/// optional name filter. Recognised control flags (`--bench`, `--test`,
/// `--exact`, `--nocapture`) are ignored; the first free argument is the
/// filter.
pub fn parse_filter_from_args() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

/// True when the harness was NOT invoked by `cargo bench` (mirroring
/// upstream criterion: cargo passes `--bench` only in bench mode, so a
/// plain `cargo test` run becomes a one-iteration smoke pass instead of a
/// full timing run).
pub fn is_test_mode() -> bool {
    !std::env::args().any(|a| a == "--bench")
}

/// Declares a benchmark group, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(filter: ::std::option::Option<::std::string::String>) {
            let mut criterion: $crate::Criterion = $config;
            if $crate::is_test_mode() {
                criterion = criterion
                    .sample_size(1)
                    .measurement_time(::std::time::Duration::from_millis(1))
                    .warm_up_time(::std::time::Duration::from_millis(1));
            }
            let mut criterion = criterion.with_filter(filter);
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the harness `main` for one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let filter = $crate::parse_filter_from_args();
            $($group(filter.clone());)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = fast_criterion();
        let mut runs = 0u64;
        c.bench_function("smoke_iter", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_runs_setup_and_routine() {
        let mut c = fast_criterion();
        let mut total = 0u64;
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| {
                    total += v.iter().sum::<u64>();
                    total
                },
                BatchSize::SmallInput,
            )
        });
        assert!(total > 0);
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        let mut c = fast_criterion().with_filter(Some("match_me".to_string()));
        let mut ran = false;
        c.bench_function("other_name", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran, "filtered bench must not run");
        c.bench_function("yes_match_me", |b| b.iter(|| 1));
    }

    #[test]
    fn formats_time_units() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(12_000_000_000.0).contains('s'));
    }
}
