//! Vendored offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, implementing the
//! subset of the 1.x API this workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] and boxing;
//! * range, tuple and [`collection::vec`] strategies plus [`any`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike upstream there is **no shrinking**: a failing case reports its
//! case number and the panic message, which is enough for the deterministic
//! seeded runs used here (set `PROPTEST_SEED` to change the stream).

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Failure raised by `prop_assert!`-style macros inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Upstream-compatible alias for [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration (a subset of upstream's knobs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Base seed for a named test: deterministic per test, overridable via the
/// `PROPTEST_SEED` environment variable.
pub fn rng_for_test(test_name: &str) -> TestRng {
    let env_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ env_seed;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of random values of one type.
///
/// This is the object-safe core; combinators that need `Sized` (mapping,
/// boxing) carry a `where Self: Sized` bound so `Box<dyn Strategy<...>>`
/// keeps working for [`prop_oneof!`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Mapped strategy; see [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Exact value ("Just") strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_prim {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// The canonical strategy for `T` (e.g. `any::<u8>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Something convertible to a length range for [`fn@vec`].
    pub trait IntoSizeRange {
        /// Inclusive `(lo, hi)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lo..=self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len)` — a vector of `len` (or a length drawn from a
    /// range) elements.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = len.bounds();
        VecStrategy { element, lo, hi }
    }
}

/// Union over boxed strategies, as built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A uniform union over the given arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Everything a property test file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Namespace mirror of upstream's `proptest::prop` prelude module.
pub mod prop {
    pub use crate::collection;
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (rather than panicking directly) so the harness can report the case
/// number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        // The `#[test]` attribute is written by the caller inside the
        // macro body (upstream-compatible syntax) and passes through $meta.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    let ($($arg,)+) = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::rng_for_test("ranges");
        for _ in 0..1000 {
            let x = (0..10i32).generate(&mut rng);
            assert!((0..10).contains(&x));
            let y = (1..=5usize).generate(&mut rng);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::rng_for_test("vec");
        let strat = prop::collection::vec(0.0f32..1.0, 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::rng_for_test("oneof");
        let strat = prop_oneof![1i32..=1, 2i32..=2];
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: tuple args, prop_map, prop_assert machinery.
        #[test]
        fn macro_wires_args(
            (a, b) in (0i32..50, 0i32..50),
            v in prop::collection::vec(any::<u8>(), 0..8),
        ) {
            prop_assert!(a + b <= 98);
            prop_assert!(v.len() < 8);
            let doubled = (0i32..10).prop_map(|x| x * 2);
            let mut rng2 = crate::rng_for_test("inner");
            let d = doubled.generate(&mut rng2);
            prop_assert_eq!(d % 2, 0);
        }
    }

    #[test]
    fn prop_assert_returns_err_with_message() {
        let check = |x: i32| -> Result<(), TestCaseError> {
            prop_assert!(x > 100, "x = {} is not > 100", x);
            Ok(())
        };
        assert!(check(101).is_ok());
        let err = check(3).expect_err("3 is not > 100");
        assert!(err.to_string().contains("x = 3"));
    }
}
