//! The censor abstraction: a black box that scores flows.
//!
//! Per the threat model (§2), the attacker observes only binary decisions.
//! [`Censor`] is that oracle: `score` returns P(sensitive) in `[0, 1]` and
//! [`Censor::blocks`] thresholds it at 0.5. All implementations are
//! `Send + Sync` so the RL core can query them from parallel rollout
//! workers.
//!
//! Polarity note (DESIGN.md §5.1): the paper's decision function
//! `C(y) = 1 ⇔ allowed` is expressed here as `blocks = score ≥ 0.5` with
//! *score = P(sensitive)*; an adversarial flow succeeds when
//! `blocks == false`.

use amoeba_nn::{Forward, Matrix};
use amoeba_traffic::Flow;

/// The shared numeric scoring path: every censor family's per-flow
/// probability is one [`Forward`] evaluation over that family's numeric
/// representation (position-major rows for the NN censors, hand-crafted /
/// cumulative features for DT/RF/CUMUL). Centralising it here keeps the
/// six `Censor::score` impls free of duplicated forward plumbing.
pub(crate) fn score_row(net: &dyn Forward, row: &[f32]) -> f32 {
    let x = Matrix::from_vec(1, row.len(), row.to_vec());
    net.forward(&x)[(0, 0)]
}

/// A trained censoring classifier.
pub trait Censor: Send + Sync {
    /// P(flow is sensitive / tunnelled) in `[0, 1]`.
    ///
    /// Traditional models (DT/RF/CUMUL) return leaf probabilities or
    /// logistic-squashed margins; NN models return sigmoid outputs.
    fn score(&self, flow: &Flow) -> f32;

    /// The gateway's blocking decision for this (possibly partial) flow.
    fn blocks(&self, flow: &Flow) -> bool {
        self.score(flow) >= 0.5
    }

    /// Model family identifier.
    fn kind(&self) -> CensorKind;
}

/// The six classifier families evaluated in the paper (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CensorKind {
    /// Stacked Denoising Autoencoder (MLP encoder + classifier head).
    Sdae,
    /// Deep Fingerprinting (1-D CNN).
    Df,
    /// Multi-layer LSTM over raw sequences.
    Lstm,
    /// CART decision tree over 166 hand-crafted features.
    Dt,
    /// Random forest over 166 hand-crafted features.
    Rf,
    /// SVM-RBF over CUMUL cumulative traces.
    Cumul,
}

impl CensorKind {
    /// All kinds, in the paper's Table 1 row order.
    pub const ALL: [CensorKind; 6] = [
        CensorKind::Sdae,
        CensorKind::Df,
        CensorKind::Lstm,
        CensorKind::Dt,
        CensorKind::Rf,
        CensorKind::Cumul,
    ];

    /// Whether the model is an NN with usable gradients (white-box attacks
    /// in Table 1 are N/A for the others).
    pub fn is_differentiable(&self) -> bool {
        matches!(self, CensorKind::Sdae | CensorKind::Df | CensorKind::Lstm)
    }

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            CensorKind::Sdae => "SDAE",
            CensorKind::Df => "DF",
            CensorKind::Lstm => "LSTM",
            CensorKind::Dt => "DT",
            CensorKind::Rf => "RF",
            CensorKind::Cumul => "CUMUL",
        }
    }
}

impl std::fmt::Display for CensorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A censor with a fixed decision: useful for tests and reward-masking
/// plumbing.
#[derive(Debug, Clone, Copy)]
pub struct ConstantCensor {
    /// The score returned for every flow.
    pub fixed_score: f32,
    /// Reported kind.
    pub as_kind: CensorKind,
}

impl Censor for ConstantCensor {
    fn score(&self, _flow: &Flow) -> f32 {
        self.fixed_score
    }

    fn kind(&self) -> CensorKind {
        self.as_kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_threshold() {
        let block_all = ConstantCensor {
            fixed_score: 0.9,
            as_kind: CensorKind::Dt,
        };
        let allow_all = ConstantCensor {
            fixed_score: 0.1,
            as_kind: CensorKind::Dt,
        };
        let flow = Flow::from_pairs(&[(100, 0.0)]);
        assert!(block_all.blocks(&flow));
        assert!(!allow_all.blocks(&flow));
    }

    #[test]
    fn kind_metadata() {
        assert!(CensorKind::Df.is_differentiable());
        assert!(!CensorKind::Rf.is_differentiable());
        assert_eq!(CensorKind::ALL.len(), 6);
        assert_eq!(CensorKind::Cumul.to_string(), "CUMUL");
    }
}
