//! Stacked Denoising Autoencoder (SDAE) censor [Rimmer et al., NDSS'18].
//!
//! Greedy layer-wise denoising pretraining (each layer learns to
//! reconstruct the previous layer's activations from a masked/corrupted
//! copy), followed by supervised fine-tuning of the encoder stack with a
//! logistic head — the classic SDAE recipe the paper's reference follows.

use rand::Rng;

use amoeba_nn::forward::Forward;
use amoeba_nn::layers::{Activation, Linear, MlpSnapshot};
use amoeba_nn::matrix::Matrix;
use amoeba_nn::optim::{Adam, Optimizer};
use amoeba_nn::tensor::Tensor;
use amoeba_traffic::{Flow, FlowRepr};

use crate::censor::{score_row, Censor, CensorKind};

/// Architecture + pretraining knobs for [`SdaeModel`].
#[derive(Debug, Clone)]
pub struct SdaeConfig {
    /// Encoder widths after the input layer (e.g. `[64, 32]`).
    pub hidden: Vec<usize>,
    /// Fraction of inputs zeroed during denoising pretraining.
    pub corruption: f32,
    /// Epochs of layer-wise pretraining per layer.
    pub pretrain_epochs: usize,
    /// Pretraining learning rate.
    pub pretrain_lr: f32,
}

impl Default for SdaeConfig {
    fn default() -> Self {
        Self {
            hidden: vec![64, 32],
            corruption: 0.2,
            pretrain_epochs: 3,
            pretrain_lr: 1e-3,
        }
    }
}

/// Trainable SDAE model.
pub struct SdaeModel {
    encoder: Vec<Linear>,
    head: Linear,
    repr: FlowRepr,
    config: SdaeConfig,
}

impl SdaeModel {
    /// Builds an untrained SDAE for the given flow representation.
    pub fn new<R: Rng + ?Sized>(repr: FlowRepr, config: SdaeConfig, rng: &mut R) -> Self {
        assert!(
            !config.hidden.is_empty(),
            "SdaeConfig.hidden must be nonempty"
        );
        let mut dims = vec![repr.width()];
        dims.extend(&config.hidden);
        let encoder = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        let head = Linear::new(*config.hidden.last().expect("nonempty"), 1, rng);
        Self {
            encoder,
            head,
            repr,
            config,
        }
    }

    /// Flow representation this model expects.
    pub fn repr(&self) -> FlowRepr {
        self.repr
    }

    /// Encoder forward (ReLU between layers).
    fn encode(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for layer in &self.encoder {
            h = layer.forward(&h).relu();
        }
        h
    }

    /// Autograd forward over a position-major batch; returns logits
    /// `(B, 1)` with sigmoid(logit) = P(sensitive).
    pub fn forward_graph(&self, x: &Tensor) -> Tensor {
        self.head.forward(&self.encode(x))
    }

    /// Trainable parameters (encoder + head).
    pub fn params(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self.encoder.iter().flat_map(Linear::params).collect();
        p.extend(self.head.params());
        p
    }

    /// Greedy layer-wise denoising pretraining on unlabelled rows.
    ///
    /// For each encoder layer, a throwaway decoder is trained to
    /// reconstruct that layer's input from a corrupted copy; the encoder
    /// weights learned this way initialise supervised fine-tuning.
    pub fn pretrain<R: Rng + ?Sized>(&mut self, rows: &[Vec<f32>], rng: &mut R) {
        if rows.is_empty() || self.config.pretrain_epochs == 0 {
            return;
        }
        // Current representation of the data as it passes through trained
        // layers (plain matrices; graph rebuilt per epoch).
        let mut data: Vec<Vec<f32>> = rows.to_vec();
        let encoder_dims: Vec<usize> = self.encoder.iter().map(Linear::out_dim).collect();

        for (li, out_dim) in encoder_dims.iter().enumerate() {
            let in_dim = data[0].len();
            let decoder = Linear::new(*out_dim, in_dim, rng);
            let mut params = self.encoder[li].params();
            params.extend(decoder.params());
            let mut opt = Adam::new(params, self.config.pretrain_lr);

            for _ in 0..self.config.pretrain_epochs {
                let batch = to_matrix(&data);
                let corrupted = batch.map(|v| v); // clone via map
                let mut corrupted = corrupted;
                for v in corrupted.as_mut_slice() {
                    if rng.gen::<f32>() < self.config.corruption {
                        *v = 0.0;
                    }
                }
                opt.zero_grad();
                let hidden = self.encoder[li]
                    .forward(&Tensor::constant(corrupted))
                    .relu();
                let recon = decoder.forward(&hidden);
                let loss = recon.mse_loss(&batch);
                loss.backward();
                opt.step();
            }

            // Propagate data through the freshly pretrained layer.
            let snap = self.encoder[li].snapshot();
            data = data
                .iter()
                .map(|row| {
                    let m = Matrix::from_vec(1, row.len(), row.clone());
                    snap.forward(&m).map(|v| v.max(0.0)).into_vec()
                })
                .collect();
        }
    }

    /// Freezes current weights into a thread-safe censor.
    pub fn censor(&self) -> SdaeCensor {
        let mut layers: Vec<_> = self.encoder.iter().map(Linear::snapshot).collect();
        layers.push(self.head.snapshot());
        SdaeCensor {
            net: MlpSnapshot {
                layers,
                hidden_activation: Activation::Relu,
                output_activation: Activation::Sigmoid,
            },
            repr: self.repr,
        }
    }
}

fn to_matrix(rows: &[Vec<f32>]) -> Matrix {
    let cols = rows[0].len();
    let mut data = Vec::with_capacity(rows.len() * cols);
    for r in rows {
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), cols, data)
}

/// Inference-only SDAE censor (`Send + Sync`).
#[derive(Clone, Debug)]
pub struct SdaeCensor {
    net: MlpSnapshot,
    repr: FlowRepr,
}

impl SdaeCensor {
    /// P(sensitive) for a pre-encoded position-major row.
    pub fn score_encoded(&self, row: &[f32]) -> f32 {
        score_row(&self.net, row)
    }
}

impl Censor for SdaeCensor {
    fn score(&self, flow: &Flow) -> f32 {
        self.score_encoded(&self.repr.to_position_major(flow))
    }

    fn kind(&self) -> CensorKind {
        CensorKind::Sdae
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let repr = FlowRepr::tcp();
        let model = SdaeModel::new(repr, SdaeConfig::default(), &mut rng);
        let x = Tensor::constant(Matrix::zeros(4, repr.width()));
        assert_eq!(model.forward_graph(&x).shape(), (4, 1));
    }

    #[test]
    fn pretraining_reduces_reconstruction_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let repr = FlowRepr {
            max_len: 8,
            max_size: 1460.0,
            max_delay_ms: 500.0,
        };
        let cfg = SdaeConfig {
            hidden: vec![12],
            corruption: 0.1,
            pretrain_epochs: 60,
            pretrain_lr: 5e-3,
        };
        let mut model = SdaeModel::new(repr, cfg, &mut rng);
        // Structured data (low-rank) so a 12-dim bottleneck can reconstruct.
        let rows: Vec<Vec<f32>> = (0..64)
            .map(|i| {
                let a = (i as f32 / 64.0) * 2.0 - 1.0;
                (0..16).map(|j| a * (j as f32 / 16.0)).collect()
            })
            .collect();

        // Reconstruction error before vs after pretraining, using a probe
        // decoder trained for a fixed tiny budget both times.
        let err = |model: &SdaeModel, rng: &mut StdRng| -> f32 {
            let batch = to_matrix(&rows);
            let hidden = model.encoder[0]
                .forward(&Tensor::constant(batch.clone()))
                .relu();
            let probe = Linear::new(12, 16, rng);
            let mut opt = Adam::new(probe.params(), 1e-2);
            let mut last = f32::INFINITY;
            for _ in 0..40 {
                opt.zero_grad();
                let recon = probe.forward(&hidden.detach());
                let loss = recon.mse_loss(&batch);
                last = loss.item();
                loss.backward();
                opt.step();
            }
            last
        };

        let before = err(&model, &mut rng);
        model.pretrain(&rows, &mut rng);
        let after = err(&model, &mut rng);
        assert!(
            after <= before * 1.1,
            "pretraining should not hurt reconstruction: before={before} after={after}"
        );
    }

    #[test]
    fn censor_matches_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let repr = FlowRepr::tcp();
        let model = SdaeModel::new(repr, SdaeConfig::default(), &mut rng);
        let censor = model.censor();
        let flow = Flow::from_pairs(&[(536, 0.0), (-1072, 1.0)]);
        let row = repr.to_position_major(&flow);
        let logit = model
            .forward_graph(&Tensor::constant(Matrix::from_vec(
                1,
                row.len(),
                row.clone(),
            )))
            .value()[(0, 0)];
        let expect = 1.0 / (1.0 + (-logit).exp());
        assert!((censor.score(&flow) - expect).abs() < 1e-5);
        assert_eq!(censor.kind(), CensorKind::Sdae);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn rejects_empty_hidden() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SdaeConfig {
            hidden: vec![],
            ..Default::default()
        };
        let _ = SdaeModel::new(FlowRepr::tcp(), cfg, &mut rng);
    }
}
