//! Training drivers and the unified classifier API.
//!
//! Mirrors the paper's §5.4 procedure: censors are trained on the
//! `clf_train` split and evaluated on `test`. One entry point,
//! [`train_censor`], covers all six families; NN models are additionally
//! reachable through [`train_nn_model`] so the white-box attack baselines
//! (C&W, NIDSGAN, BAP) can access their gradients.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use amoeba_ml::{
    DecisionTree, ForestConfig, RandomForest, StandardScaler, Svm, SvmConfig, TreeConfig,
};
use amoeba_nn::matrix::Matrix;
use amoeba_nn::optim::{Adam, Optimizer};
use amoeba_nn::tensor::Tensor;
use amoeba_traffic::{cumul_features, extract_features, Dataset, Flow, FlowRepr, Label, Layer};

use crate::censor::{Censor, CensorKind};
use crate::cumul::CumulCensor;
use crate::df::{DfCensor, DfConfig, DfModel};
use crate::lstm::{LstmCensor, LstmConfig, LstmModel};
use crate::sdae::{SdaeCensor, SdaeConfig, SdaeModel};
use crate::trees::{ForestCensor, TreeCensor};

/// Hyperparameters for training any censor family.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Gradient epochs for DF/SDAE.
    pub epochs: usize,
    /// Gradient epochs for the (slower, per-flow) LSTM.
    pub lstm_epochs: usize,
    /// Minibatch size for the feed-forward models.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// DF architecture.
    pub df: DfConfig,
    /// SDAE architecture + pretraining.
    pub sdae: SdaeConfig,
    /// LSTM architecture.
    pub lstm: LstmConfig,
    /// Decision-tree hyperparameters.
    pub tree: TreeConfig,
    /// Random-forest hyperparameters.
    pub forest: ForestConfig,
    /// SVM hyperparameters for CUMUL.
    pub svm: SvmConfig,
    /// CUMUL interpolation points.
    pub cumul_points: usize,
}

impl TrainConfig {
    /// CPU-friendly defaults used by tests and the scaled-down experiment
    /// harness.
    pub fn fast() -> Self {
        Self {
            epochs: 8,
            lstm_epochs: 2,
            batch_size: 32,
            lr: 2e-3,
            df: DfConfig::default(),
            sdae: SdaeConfig::default(),
            lstm: LstmConfig::default(),
            tree: TreeConfig::default(),
            forest: ForestConfig {
                n_trees: 30,
                ..Default::default()
            },
            svm: SvmConfig::default(),
            cumul_points: 40,
        }
    }

    /// Paper-scale preset (Table 3 / Appendix A.4); expect long CPU runs.
    pub fn paper() -> Self {
        Self {
            epochs: 30,
            lstm_epochs: 10,
            batch_size: 64,
            lr: 5e-4,
            df: DfConfig {
                channels1: 32,
                channels2: 64,
                kernel: 8,
                stride: 2,
                head_hidden: 256,
            },
            sdae: SdaeConfig {
                hidden: vec![512, 128, 32],
                corruption: 0.2,
                pretrain_epochs: 10,
                pretrain_lr: 1e-3,
            },
            lstm: LstmConfig {
                hidden: 128,
                layers: 2,
            },
            tree: TreeConfig::default(),
            forest: ForestConfig {
                n_trees: 100,
                ..Default::default()
            },
            svm: SvmConfig::default(),
            cumul_points: 100,
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::fast()
    }
}

fn dataset_rows(ds: &Dataset, repr: FlowRepr) -> (Vec<Vec<f32>>, Vec<f32>) {
    let rows = ds.flows.iter().map(|f| repr.to_position_major(f)).collect();
    let labels = ds
        .labels
        .iter()
        .map(|l| if *l == Label::Sensitive { 1.0 } else { 0.0 })
        .collect();
    (rows, labels)
}

fn rows_to_matrix(rows: &[Vec<f32>], indices: &[usize]) -> Matrix {
    let cols = rows[0].len();
    let mut data = Vec::with_capacity(indices.len() * cols);
    for &i in indices {
        data.extend_from_slice(&rows[i]);
    }
    Matrix::from_vec(indices.len(), cols, data)
}

/// Minibatch BCE training loop shared by DF and SDAE. Returns the final
/// epoch's mean loss.
#[allow(clippy::too_many_arguments)]
fn train_batched(
    forward: impl Fn(&Tensor) -> Tensor,
    params: Vec<Tensor>,
    rows: &[Vec<f32>],
    labels: &[f32],
    epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut StdRng,
) -> f32 {
    let mut opt = Adam::new(params, lr);
    let mut order: Vec<usize> = (0..rows.len()).collect();
    let mut last_epoch_loss = f32::INFINITY;
    for _ in 0..epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch_size.max(1)) {
            let x = Tensor::constant(rows_to_matrix(rows, chunk));
            let y = Matrix::from_vec(chunk.len(), 1, chunk.iter().map(|&i| labels[i]).collect());
            opt.zero_grad();
            let loss = forward(&x).bce_with_logits_loss(&y);
            epoch_loss += loss.item();
            batches += 1;
            loss.backward();
            opt.step();
        }
        last_epoch_loss = epoch_loss / batches.max(1) as f32;
    }
    last_epoch_loss
}

/// Trains a DF model on the dataset (position-major inputs).
pub fn train_df(ds: &Dataset, repr: FlowRepr, cfg: &TrainConfig, seed: u64) -> DfModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = DfModel::new(repr, cfg.df, &mut rng);
    let (rows, labels) = dataset_rows(ds, repr);
    train_batched(
        |x| model.forward_graph(x),
        model.params(),
        &rows,
        &labels,
        cfg.epochs,
        cfg.batch_size,
        cfg.lr,
        &mut rng,
    );
    model
}

/// Trains an SDAE model: layer-wise denoising pretraining then supervised
/// fine-tuning.
pub fn train_sdae(ds: &Dataset, repr: FlowRepr, cfg: &TrainConfig, seed: u64) -> SdaeModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = SdaeModel::new(repr, cfg.sdae.clone(), &mut rng);
    let (rows, labels) = dataset_rows(ds, repr);
    model.pretrain(&rows, &mut rng);
    train_batched(
        |x| model.forward_graph(x),
        model.params(),
        &rows,
        &labels,
        cfg.epochs,
        cfg.batch_size,
        cfg.lr,
        &mut rng,
    );
    model
}

/// Trains an LSTM model over variable-length flows (per-flow gradient
/// accumulation within each minibatch).
pub fn train_lstm(ds: &Dataset, repr: FlowRepr, cfg: &TrainConfig, seed: u64) -> LstmModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = LstmModel::new(repr, cfg.lstm, &mut rng);
    let mut opt = Adam::new(model.params(), cfg.lr);
    let mut order: Vec<usize> = (0..ds.len()).collect();
    for _ in 0..cfg.lstm_epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            opt.zero_grad();
            let mut total: Option<Tensor> = None;
            for &i in chunk {
                let y = Matrix::from_vec(
                    1,
                    1,
                    vec![if ds.labels[i] == Label::Sensitive {
                        1.0
                    } else {
                        0.0
                    }],
                );
                let loss = model.forward_flow(&ds.flows[i]).bce_with_logits_loss(&y);
                total = Some(match total {
                    Some(t) => t.add(&loss),
                    None => loss,
                });
            }
            if let Some(t) = total {
                t.scale(1.0 / chunk.len() as f32).backward();
                opt.step();
            }
        }
    }
    model
}

/// Trains the DT censor over the 166-feature representation.
pub fn train_dt(ds: &Dataset, layer: Layer, cfg: &TrainConfig, seed: u64) -> TreeCensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f32>> = ds
        .flows
        .iter()
        .map(|f| extract_features(f, layer))
        .collect();
    let tree = DecisionTree::fit(&x, &ds.labels_u8(), cfg.tree, &mut rng);
    TreeCensor { tree, layer }
}

/// Trains the RF censor over the 166-feature representation.
pub fn train_rf(ds: &Dataset, layer: Layer, cfg: &TrainConfig, seed: u64) -> ForestCensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f32>> = ds
        .flows
        .iter()
        .map(|f| extract_features(f, layer))
        .collect();
    let forest = RandomForest::fit(&x, &ds.labels_u8(), cfg.forest, &mut rng);
    ForestCensor { forest, layer }
}

/// Trains the CUMUL censor (scaler + SVM-RBF over cumulative traces).
pub fn train_cumul(ds: &Dataset, cfg: &TrainConfig, seed: u64) -> CumulCensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let feats: Vec<Vec<f32>> = ds
        .flows
        .iter()
        .map(|f| cumul_features(f, cfg.cumul_points))
        .collect();
    let (scaler, scaled) = StandardScaler::fit_transform(&feats);
    let svm = Svm::fit(&scaled, &ds.labels_u8(), cfg.svm, &mut rng);
    CumulCensor {
        svm,
        scaler,
        n_points: cfg.cumul_points,
    }
}

/// Any trained censor, boxed by family.
pub enum TrainedCensor {
    /// Deep Fingerprinting CNN.
    Df(DfCensor),
    /// Stacked denoising autoencoder.
    Sdae(SdaeCensor),
    /// LSTM sequence model.
    Lstm(LstmCensor),
    /// Decision tree.
    Dt(TreeCensor),
    /// Random forest.
    Rf(ForestCensor),
    /// CUMUL SVM.
    Cumul(CumulCensor),
}

impl Censor for TrainedCensor {
    fn score(&self, flow: &Flow) -> f32 {
        match self {
            TrainedCensor::Df(c) => c.score(flow),
            TrainedCensor::Sdae(c) => c.score(flow),
            TrainedCensor::Lstm(c) => c.score(flow),
            TrainedCensor::Dt(c) => c.score(flow),
            TrainedCensor::Rf(c) => c.score(flow),
            TrainedCensor::Cumul(c) => c.score(flow),
        }
    }

    fn kind(&self) -> CensorKind {
        match self {
            TrainedCensor::Df(_) => CensorKind::Df,
            TrainedCensor::Sdae(_) => CensorKind::Sdae,
            TrainedCensor::Lstm(_) => CensorKind::Lstm,
            TrainedCensor::Dt(_) => CensorKind::Dt,
            TrainedCensor::Rf(_) => CensorKind::Rf,
            TrainedCensor::Cumul(_) => CensorKind::Cumul,
        }
    }
}

/// Trains any censor family on a dataset.
pub fn train_censor(
    kind: CensorKind,
    ds: &Dataset,
    layer: Layer,
    cfg: &TrainConfig,
    seed: u64,
) -> TrainedCensor {
    let repr = FlowRepr::for_layer(layer);
    match kind {
        CensorKind::Df => TrainedCensor::Df(train_df(ds, repr, cfg, seed).censor()),
        CensorKind::Sdae => TrainedCensor::Sdae(train_sdae(ds, repr, cfg, seed).censor()),
        CensorKind::Lstm => TrainedCensor::Lstm(train_lstm(ds, repr, cfg, seed).censor()),
        CensorKind::Dt => TrainedCensor::Dt(train_dt(ds, layer, cfg, seed)),
        CensorKind::Rf => TrainedCensor::Rf(train_rf(ds, layer, cfg, seed)),
        CensorKind::Cumul => TrainedCensor::Cumul(train_cumul(ds, cfg, seed)),
    }
}

/// A trained NN model with its autograd graph intact — what the white-box
/// attack baselines differentiate through.
pub enum NnModel {
    /// Deep Fingerprinting CNN.
    Df(DfModel),
    /// Stacked denoising autoencoder.
    Sdae(SdaeModel),
    /// LSTM sequence model.
    Lstm(LstmModel),
}

impl NnModel {
    /// Autograd forward over a position-major batch; logits `(B, 1)`.
    pub fn forward_graph(&self, x: &Tensor) -> Tensor {
        match self {
            NnModel::Df(m) => m.forward_graph(x),
            NnModel::Sdae(m) => m.forward_graph(x),
            NnModel::Lstm(m) => m.forward_graph(x),
        }
    }

    /// Flow representation this model expects.
    pub fn repr(&self) -> FlowRepr {
        match self {
            NnModel::Df(m) => m.repr(),
            NnModel::Sdae(m) => m.repr(),
            NnModel::Lstm(m) => m.repr(),
        }
    }

    /// Freezes into a thread-safe censor.
    pub fn censor(&self) -> TrainedCensor {
        match self {
            NnModel::Df(m) => TrainedCensor::Df(m.censor()),
            NnModel::Sdae(m) => TrainedCensor::Sdae(m.censor()),
            NnModel::Lstm(m) => TrainedCensor::Lstm(m.censor()),
        }
    }

    /// Family tag.
    pub fn kind(&self) -> CensorKind {
        match self {
            NnModel::Df(_) => CensorKind::Df,
            NnModel::Sdae(_) => CensorKind::Sdae,
            NnModel::Lstm(_) => CensorKind::Lstm,
        }
    }
}

/// Trains one of the three NN families, keeping the graph for white-box
/// attacks.
///
/// # Panics
/// Panics if `kind` is not differentiable (DT/RF/CUMUL).
pub fn train_nn_model(
    kind: CensorKind,
    ds: &Dataset,
    layer: Layer,
    cfg: &TrainConfig,
    seed: u64,
) -> NnModel {
    let repr = FlowRepr::for_layer(layer);
    match kind {
        CensorKind::Df => NnModel::Df(train_df(ds, repr, cfg, seed)),
        CensorKind::Sdae => NnModel::Sdae(train_sdae(ds, repr, cfg, seed)),
        CensorKind::Lstm => NnModel::Lstm(train_lstm(ds, repr, cfg, seed)),
        other => panic!("train_nn_model: {other} is not an NN family"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use amoeba_traffic::{build_dataset, DatasetKind};

    fn tor_splits() -> (Dataset, Dataset) {
        let ds = build_dataset(DatasetKind::Tor, 120, None, 17);
        let splits = ds.split(17);
        (splits.clf_train, splits.test)
    }

    #[test]
    fn df_reaches_high_accuracy_on_tor() {
        let (train, test) = tor_splits();
        let cfg = TrainConfig::fast();
        let censor = train_censor(CensorKind::Df, &train, Layer::Tcp, &cfg, 1);
        let m = evaluate(&censor, &test);
        assert!(m.accuracy() > 0.9, "DF test metrics: {m}");
    }

    #[test]
    fn sdae_reaches_high_accuracy_on_tor() {
        let (train, test) = tor_splits();
        let cfg = TrainConfig::fast();
        let censor = train_censor(CensorKind::Sdae, &train, Layer::Tcp, &cfg, 2);
        let m = evaluate(&censor, &test);
        assert!(m.accuracy() > 0.9, "SDAE test metrics: {m}");
    }

    #[test]
    fn dt_and_rf_reach_high_accuracy_on_tor() {
        let (train, test) = tor_splits();
        let cfg = TrainConfig::fast();
        let dt = train_censor(CensorKind::Dt, &train, Layer::Tcp, &cfg, 3);
        let rf = train_censor(CensorKind::Rf, &train, Layer::Tcp, &cfg, 4);
        assert!(
            evaluate(&dt, &test).accuracy() > 0.95,
            "{}",
            evaluate(&dt, &test)
        );
        assert!(
            evaluate(&rf, &test).accuracy() > 0.95,
            "{}",
            evaluate(&rf, &test)
        );
    }

    #[test]
    fn cumul_reaches_high_accuracy_on_tor() {
        let (train, test) = tor_splits();
        let cfg = TrainConfig::fast();
        let censor = train_censor(CensorKind::Cumul, &train, Layer::Tcp, &cfg, 5);
        let m = evaluate(&censor, &test);
        assert!(m.accuracy() > 0.9, "CUMUL test metrics: {m}");
    }

    #[test]
    fn lstm_learns_above_chance() {
        let (train, test) = tor_splits();
        let cfg = TrainConfig::fast();
        let censor = train_censor(CensorKind::Lstm, &train, Layer::Tcp, &cfg, 6);
        let m = evaluate(&censor, &test);
        assert!(m.accuracy() > 0.8, "LSTM test metrics: {m}");
    }

    #[test]
    fn nn_model_censor_agrees_with_graph() {
        let (train, _) = tor_splits();
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::fast()
        };
        let model = train_nn_model(CensorKind::Df, &train, Layer::Tcp, &cfg, 7);
        let censor = model.censor();
        let flow = &train.flows[0];
        let row = model.repr().to_position_major(flow);
        let logit = model
            .forward_graph(&Tensor::constant(Matrix::from_vec(1, row.len(), row)))
            .value()[(0, 0)];
        let expect = 1.0 / (1.0 + (-logit).exp());
        assert!((censor.score(flow) - expect).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "not an NN family")]
    fn train_nn_model_rejects_trees() {
        let (train, _) = tor_splits();
        let _ = train_nn_model(CensorKind::Dt, &train, Layer::Tcp, &TrainConfig::fast(), 8);
    }
}
