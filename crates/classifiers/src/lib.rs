//! # amoeba-classifiers
//!
//! The censoring classifiers of the Amoeba (CoNEXT'23) reproduction — the
//! ML models a censor deploys at the gateway (§5.1):
//!
//! * [`df::DfModel`] — Deep Fingerprinting CNN;
//! * [`sdae::SdaeModel`] — stacked denoising autoencoder;
//! * [`lstm::LstmModel`] — multi-layer LSTM over arbitrary-length flows;
//! * [`cumul::CumulCensor`] — SVM-RBF over CUMUL cumulative traces;
//! * [`trees::TreeCensor`] / [`trees::ForestCensor`] — DT/RF over 166
//!   hand-crafted features.
//!
//! All expose the black-box [`censor::Censor`] oracle used by the RL core;
//! NN families additionally keep their autograd graph ([`train::NnModel`])
//! for the white-box attack baselines.
//!
//! On top of the one-shot oracle sits [`program`]: streaming
//! [`program::CensorProgram`] state machines (warmup, hysteresis,
//! hard-label verdict-only gateways, mid-stream teardown) that the gym
//! and the serving dataplane train and serve against. The six one-shot
//! families become degenerate programs through
//! [`program::ClassifierProgramFactory`], pinned bit-for-bit.

#![warn(missing_docs)]

pub mod censor;
pub mod cumul;
pub mod df;
pub mod lstm;
pub mod metrics;
pub mod program;
pub mod sdae;
pub mod train;
pub mod trees;

pub use censor::{Censor, CensorKind, ConstantCensor};
pub use cumul::CumulCensor;
pub use df::{DfCensor, DfConfig, DfModel};
pub use lstm::{LstmCensor, LstmConfig, LstmModel};
pub use metrics::{evaluate, Metrics};
pub use program::{
    CensorDecision, CensorProgram, CensorProgramFactory, ClassifierProgram,
    ClassifierProgramFactory, HardLabelFactory, HardLabelProgram, StatefulProgram,
    StatefulProgramFactory, ThresholdProgram, ThresholdProgramFactory,
};
pub use sdae::{SdaeCensor, SdaeConfig, SdaeModel};
pub use train::{
    train_censor, train_cumul, train_df, train_dt, train_lstm, train_nn_model, train_rf,
    train_sdae, NnModel, TrainConfig, TrainedCensor,
};
pub use trees::{ForestCensor, TreeCensor};
