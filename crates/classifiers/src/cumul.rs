//! CUMUL censor [Panchenko et al., NDSS'16]: RBF-kernel SVM over the
//! cumulative-trace representation, with feature standardisation.

use amoeba_ml::{StandardScaler, Svm};
use amoeba_nn::{Forward, Matrix};
use amoeba_traffic::{cumul_features, Flow};

use crate::censor::{score_row, Censor, CensorKind};

/// CUMUL censor: scaler + SVM over interpolated cumulative traces.
#[derive(Debug, Clone)]
pub struct CumulCensor {
    /// Fitted SVM.
    pub svm: Svm,
    /// Standardiser fitted on the training features.
    pub scaler: StandardScaler,
    /// Number of interpolation points used at fit time.
    pub n_points: usize,
}

impl CumulCensor {
    /// Raw (unscaled) feature vector for a flow.
    pub fn features(&self, flow: &Flow) -> Vec<f32> {
        cumul_features(flow, self.n_points)
    }
}

impl Forward for CumulCensor {
    /// Each row of `x` is one raw cumulative-trace feature vector; the
    /// standardiser and the SVM run inside the forward, returning `(B, 1)`
    /// logistic-squashed margins.
    fn forward(&self, x: &Matrix) -> Matrix {
        let probs = (0..x.rows())
            .map(|r| {
                let scaled = self.scaler.transform_row(x.row(r));
                self.svm.predict_proba(&scaled)
            })
            .collect();
        Matrix::col_vector(probs)
    }
}

impl Censor for CumulCensor {
    fn score(&self, flow: &Flow) -> f32 {
        score_row(self, &self.features(flow))
    }

    fn kind(&self) -> CensorKind {
        CensorKind::Cumul
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_ml::{Kernel, SvmConfig};
    use amoeba_traffic::{build_dataset, DatasetKind, Label};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cumul_censor_separates_v2ray_from_https() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = build_dataset(DatasetKind::V2Ray, 60, None, 3);
        let n_points = 40;
        let feats: Vec<Vec<f32>> = ds
            .flows
            .iter()
            .map(|f| cumul_features(f, n_points))
            .collect();
        let (scaler, scaled) = StandardScaler::fit_transform(&feats);
        let svm = Svm::fit(
            &scaled,
            &ds.labels_u8(),
            SvmConfig {
                kernel: Kernel::Rbf { gamma: 0.02 },
                c: 2.0,
                ..Default::default()
            },
            &mut rng,
        );
        let censor = CumulCensor {
            svm,
            scaler,
            n_points,
        };
        let mut correct = 0;
        for (f, &l) in ds.flows.iter().zip(&ds.labels) {
            if censor.blocks(f) == (l == Label::Sensitive) {
                correct += 1;
            }
        }
        assert!(
            correct as f32 / ds.len() as f32 > 0.9,
            "train acc {correct}/{}",
            ds.len()
        );
        assert_eq!(censor.kind(), CensorKind::Cumul);
    }
}
