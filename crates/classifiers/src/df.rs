//! Deep Fingerprinting (DF) censor [Sirinam et al., CCS'18]: a 1-D CNN
//! over the flow representation.
//!
//! The original DF consumes direction sequences only; per §5.1 the paper
//! tailors it to the `(sizes, delays)` flow representation of §3, which is
//! what this implementation does: input is the position-major encoding of
//! [`FlowRepr`] (2 channels per packet slot), followed by two conv-ReLU
//! blocks, max pooling, and a dense head.

use rand::Rng;

use amoeba_nn::conv::{Conv1d, MaxPool1d};
use amoeba_nn::forward::Pipeline;
use amoeba_nn::layers::{Activation, Mlp};
use amoeba_nn::tensor::Tensor;
use amoeba_traffic::{Flow, FlowRepr};

use crate::censor::{score_row, Censor, CensorKind};

/// Trainable DF model (autograd graph path).
pub struct DfModel {
    conv1: Conv1d,
    conv2: Conv1d,
    pool: MaxPool1d,
    head: Mlp,
    repr: FlowRepr,
}

/// Architecture constants for [`DfModel`].
#[derive(Debug, Clone, Copy)]
pub struct DfConfig {
    /// Channels after the first conv block.
    pub channels1: usize,
    /// Channels after the second conv block.
    pub channels2: usize,
    /// Kernel width of both conv blocks.
    pub kernel: usize,
    /// Stride of both conv blocks.
    pub stride: usize,
    /// Hidden width of the dense head.
    pub head_hidden: usize,
}

impl Default for DfConfig {
    fn default() -> Self {
        Self {
            channels1: 16,
            channels2: 32,
            kernel: 5,
            stride: 2,
            head_hidden: 64,
        }
    }
}

impl DfModel {
    /// Builds an untrained DF model for the given flow representation.
    pub fn new<R: Rng + ?Sized>(repr: FlowRepr, config: DfConfig, rng: &mut R) -> Self {
        let conv1 = Conv1d::new(
            FlowRepr::CHANNELS,
            config.channels1,
            config.kernel,
            config.stride,
            rng,
        );
        let conv2 = Conv1d::new(
            config.channels1,
            config.channels2,
            config.kernel,
            config.stride,
            rng,
        );
        let pool = MaxPool1d::new(config.channels2, 2, 2);
        let l1 = conv1.out_len(repr.max_len);
        let l2 = conv2.out_len(l1);
        let l3 = pool.out_len(l2);
        let head = Mlp::new(
            &[l3 * config.channels2, config.head_hidden, 1],
            Activation::Relu,
            Activation::Identity,
            rng,
        );
        Self {
            conv1,
            conv2,
            pool,
            head,
            repr,
        }
    }

    /// Flow representation this model expects.
    pub fn repr(&self) -> FlowRepr {
        self.repr
    }

    /// Autograd forward over a position-major batch `(B, max_len * 2)`;
    /// returns logits `(B, 1)` where sigmoid(logit) = P(sensitive).
    pub fn forward_graph(&self, x: &Tensor) -> Tensor {
        let h1 = self.conv1.forward(x).relu();
        let h2 = self.conv2.forward(&h1).relu();
        let h3 = self.pool.forward(&h2);
        self.head.forward(&h3)
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        p.extend(self.head.params());
        p
    }

    /// Freezes current weights into a thread-safe censor: the whole
    /// inference path becomes one [`Pipeline`] of `Forward` stages.
    pub fn censor(&self) -> DfCensor {
        DfCensor {
            net: Pipeline::new()
                .then(self.conv1.snapshot())
                .then(Activation::Relu)
                .then(self.conv2.snapshot())
                .then(Activation::Relu)
                .then(self.pool)
                .then(self.head.snapshot())
                .then(Activation::Sigmoid),
            repr: self.repr,
        }
    }
}

/// Inference-only DF censor (`Send + Sync`).
#[derive(Clone, Debug)]
pub struct DfCensor {
    net: Pipeline,
    repr: FlowRepr,
}

impl DfCensor {
    /// P(sensitive) for a pre-encoded position-major row.
    pub fn score_encoded(&self, row: &[f32]) -> f32 {
        score_row(&self.net, row)
    }
}

impl Censor for DfCensor {
    fn score(&self, flow: &Flow) -> f32 {
        self.score_encoded(&self.repr.to_position_major(flow))
    }

    fn kind(&self) -> CensorKind {
        CensorKind::Df
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_nn::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let repr = FlowRepr::tcp();
        let model = DfModel::new(repr, DfConfig::default(), &mut rng);
        let x = Tensor::constant(Matrix::zeros(3, repr.width()));
        let logits = model.forward_graph(&x);
        assert_eq!(logits.shape(), (3, 1));
    }

    #[test]
    fn censor_matches_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let repr = FlowRepr::tcp();
        let model = DfModel::new(repr, DfConfig::default(), &mut rng);
        let censor = model.censor();
        let flow = Flow::from_pairs(&[(536, 0.0), (-536, 2.0), (-1072, 0.3)]);
        let row = repr.to_position_major(&flow);
        let logit = model
            .forward_graph(&Tensor::constant(Matrix::from_vec(
                1,
                row.len(),
                row.clone(),
            )))
            .value()[(0, 0)];
        let expect = 1.0 / (1.0 + (-logit).exp());
        assert!((censor.score(&flow) - expect).abs() < 1e-5);
        assert_eq!(censor.kind(), CensorKind::Df);
    }

    #[test]
    fn gradients_reach_all_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let repr = FlowRepr {
            max_len: 24,
            max_size: 1460.0,
            max_delay_ms: 500.0,
        };
        let model = DfModel::new(repr, DfConfig::default(), &mut rng);
        let x = Tensor::constant(Matrix::randn(2, repr.width(), 0.5, &mut rng));
        let y = Matrix::from_vec(2, 1, vec![0.0, 1.0]);
        let loss = model.forward_graph(&x).bce_with_logits_loss(&y);
        loss.backward();
        for p in model.params() {
            assert!(p.grad().norm() > 0.0, "parameter received no gradient");
        }
    }
}
