//! Streaming censor programs: the on-path stateful adversary.
//!
//! The paper's threat model (§2) — and ROADMAP item 3 — is a gateway
//! that watches a flow *as it is transmitted*, not a classifier handed a
//! finished feature vector. [`CensorProgram`] is that adversary: a
//! per-session state machine observing the wire prefix frame by frame
//! and answering with a [`CensorDecision`] each time. The six one-shot
//! [`Censor`] families become degenerate programs through
//! [`ClassifierProgramFactory`] — bit-for-bit identical to querying the
//! classifier directly — while genuinely stateful adversaries (warmup
//! windows, hysteresis streaks, hard-label verdict-only gateways,
//! mid-stream connection teardown) compose on top without the serving
//! or training layers knowing the difference.
//!
//! ## Program obligations
//!
//! Every implementation owes the engine three guarantees:
//!
//! * **Statefulness is per-session.** A program instance belongs to
//!   exactly one session; [`CensorProgramFactory::spawn`] must return a
//!   fresh, independent state machine every call. Cross-session state
//!   (shared interior mutability keyed off other flows) would break the
//!   serving engine's grouping invariance — sessions batched together
//!   must score exactly as they would alone.
//! * **Determinism.** `observe` must be a pure function of the
//!   program's own state and the observed wire prefix. No clocks, no
//!   RNG, no environment reads: the dataplane replays programs across
//!   shard counts, batch sizes and work-stealing schedules and pins the
//!   wire (and the verdict stream) bit-for-bit.
//! * **Teardown is terminal.** Returning [`CensorDecision::Reset`]
//!   models the censor tearing the connection down (RST injection).
//!   The session ends immediately — the program is never observed
//!   again, the flow counts as blocked, and the serving layer reports
//!   it as a torn session ([`SessionStatus::Torn`] in `amoeba-serve`)
//!   with a per-tenant `teardowns` telemetry counter.
//!
//! [`SessionStatus::Torn`]: ../../amoeba_serve/enum.SessionStatus.html

use std::sync::Arc;

use amoeba_traffic::Flow;

use crate::censor::{Censor, CensorKind, ConstantCensor};

/// One verdict from a streaming censor, per observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CensorDecision {
    /// Let the flow continue; no score disclosed.
    Allow,
    /// Disclose a suspicion score in `[0, 1]`. Mid-stream, the serving
    /// layer thresholds it at 0.5 exactly like [`Censor::blocks`]; on
    /// the final observation it becomes the session's `final_score`.
    Score(f32),
    /// Block the flow (hard label, no score disclosed).
    Block,
    /// Tear the connection down mid-stream (RST). Terminal: the session
    /// ends now and the program is never consulted again.
    Reset,
}

impl CensorDecision {
    /// Whether this decision blocks the flow at the 0.5 threshold —
    /// the exact predicate [`Censor::blocks`] applies to a score.
    pub fn blocks(&self) -> bool {
        match *self {
            CensorDecision::Allow => false,
            CensorDecision::Score(s) => s >= 0.5,
            CensorDecision::Block | CensorDecision::Reset => true,
        }
    }
}

/// A per-session streaming censor: a state machine fed the wire prefix
/// after each emitted frame.
///
/// See the [module docs](self) for the statefulness / determinism /
/// teardown obligations every implementation owes the engine.
pub trait CensorProgram: Send {
    /// Observe the wire prefix as transmitted so far and decide.
    ///
    /// `wire` holds every on-path packet of the session up to and
    /// including the newest frame; `last` is true exactly once, on the
    /// session's final observation (the program's last chance to set a
    /// final score). The caller controls cadence — a program is not
    /// guaranteed to see every frame (the serving engine consults it
    /// per its verdict policy) but observations are always in stream
    /// order over growing prefixes.
    fn observe(&mut self, wire: &Flow, last: bool) -> CensorDecision;
}

/// Spawns fresh per-session [`CensorProgram`] state machines — the
/// object registries and training loops hold (one per censor tenant),
/// where the one-shot layers held an `Arc<dyn Censor>`.
pub trait CensorProgramFactory: Send + Sync {
    /// A fresh program with pristine state for one new session.
    fn spawn(&self) -> Box<dyn CensorProgram>;

    /// The classifier family underneath (for tables and labels).
    fn kind(&self) -> CensorKind;

    /// The underlying one-shot censor when this factory is a degenerate
    /// [`ClassifierProgramFactory`] adapter — the identity hook
    /// registries dedupe on, so registering the same `Arc<dyn Censor>`
    /// twice (directly or via an adapter) yields one tenant id.
    fn as_censor(&self) -> Option<&Arc<dyn Censor>> {
        None
    }
}

/// The degenerate adapter: a one-shot [`Censor`] replayed as a program.
///
/// Every observation scores the whole wire prefix with the wrapped
/// classifier and discloses the score — exactly what the pre-program
/// engine did with `censor.blocks(wire)` mid-stream and
/// `censor.score(wire)` at the end, so adapted classifiers are pinned
/// bit-for-bit against the one-shot path.
#[derive(Clone)]
pub struct ClassifierProgram {
    censor: Arc<dyn Censor>,
}

impl CensorProgram for ClassifierProgram {
    fn observe(&mut self, wire: &Flow, _last: bool) -> CensorDecision {
        CensorDecision::Score(self.censor.score(wire))
    }
}

/// Factory for [`ClassifierProgram`]s over one shared trained censor.
#[derive(Clone)]
pub struct ClassifierProgramFactory {
    censor: Arc<dyn Censor>,
}

impl ClassifierProgramFactory {
    /// Wraps a trained one-shot censor.
    pub fn new(censor: Arc<dyn Censor>) -> Self {
        Self { censor }
    }
}

impl CensorProgramFactory for ClassifierProgramFactory {
    fn spawn(&self) -> Box<dyn CensorProgram> {
        Box::new(ClassifierProgram {
            censor: Arc::clone(&self.censor),
        })
    }

    fn kind(&self) -> CensorKind {
        self.censor.kind()
    }

    fn as_censor(&self) -> Option<&Arc<dyn Censor>> {
        Some(&self.censor)
    }
}

/// A verdict-only thresholding gateway: scores the prefix at its own
/// cadence but discloses only block/allow — never a score.
///
/// Re-scores every `every` observations (and always on the final one);
/// blocks as soon as a score reaches `threshold`. In between it stays
/// silent ([`CensorDecision::Allow`]).
pub struct ThresholdProgram {
    censor: Arc<dyn Censor>,
    threshold: f32,
    every: usize,
    seen: usize,
}

impl CensorProgram for ThresholdProgram {
    fn observe(&mut self, wire: &Flow, last: bool) -> CensorDecision {
        self.seen += 1;
        let due = self.every > 0 && self.seen.is_multiple_of(self.every);
        if !due && !last {
            return CensorDecision::Allow;
        }
        if self.censor.score(wire) >= self.threshold {
            CensorDecision::Block
        } else {
            CensorDecision::Allow
        }
    }
}

/// Factory for [`ThresholdProgram`]s.
#[derive(Clone)]
pub struct ThresholdProgramFactory {
    censor: Arc<dyn Censor>,
    threshold: f32,
    every: usize,
}

impl ThresholdProgramFactory {
    /// A verdict-only gateway over `censor`, re-scoring every `every`
    /// observations and blocking at `threshold`.
    pub fn new(censor: Arc<dyn Censor>, threshold: f32, every: usize) -> Self {
        Self {
            censor,
            threshold,
            every,
        }
    }
}

impl CensorProgramFactory for ThresholdProgramFactory {
    fn spawn(&self) -> Box<dyn CensorProgram> {
        Box::new(ThresholdProgram {
            censor: Arc::clone(&self.censor),
            threshold: self.threshold,
            every: self.every,
            seen: 0,
        })
    }

    fn kind(&self) -> CensorKind {
        self.censor.kind()
    }
}

/// The hard-label wrapper: elides every score the inner program would
/// disclose, exposing only block/allow verdicts.
///
/// [`CensorDecision::Score`] maps to [`CensorDecision::Block`] at or
/// above 0.5 and [`CensorDecision::Allow`] below; the other decisions
/// pass through. The wrapped adversary's *behavior* is unchanged — only
/// its observability shrinks to the binary feedback of the hard-label
/// black-box threat model, so a session's `final_score` can only ever
/// be the 0.0/1.0 the verdict implies, never a leaked probability.
pub struct HardLabelProgram {
    inner: Box<dyn CensorProgram>,
}

impl CensorProgram for HardLabelProgram {
    fn observe(&mut self, wire: &Flow, last: bool) -> CensorDecision {
        match self.inner.observe(wire, last) {
            CensorDecision::Score(s) if s >= 0.5 => CensorDecision::Block,
            CensorDecision::Score(_) => CensorDecision::Allow,
            other => other,
        }
    }
}

/// Factory for [`HardLabelProgram`]s over any inner program family.
#[derive(Clone)]
pub struct HardLabelFactory {
    inner: Arc<dyn CensorProgramFactory>,
}

impl HardLabelFactory {
    /// Wraps an inner program factory, eliding its scores.
    pub fn new(inner: Arc<dyn CensorProgramFactory>) -> Self {
        Self { inner }
    }

    /// The common case: a hard-label gateway over a one-shot classifier.
    pub fn over_censor(censor: Arc<dyn Censor>) -> Self {
        Self::new(Arc::new(ClassifierProgramFactory::new(censor)))
    }
}

impl CensorProgramFactory for HardLabelFactory {
    fn spawn(&self) -> Box<dyn CensorProgram> {
        Box::new(HardLabelProgram {
            inner: self.inner.spawn(),
        })
    }

    fn kind(&self) -> CensorKind {
        self.inner.kind()
    }
}

/// A stateful warmup + hysteresis gateway, optionally tearing the
/// connection down.
///
/// The first `warmup` observations are ignored ([`CensorDecision::Allow`]
/// unconditionally — the gateway has not seen enough of the flow).
/// After warmup every observation is scored; `streak` counts
/// *consecutive* scores at or above `threshold` and resets to zero on
/// any score below it. Once the streak reaches `hysteresis` the gateway
/// acts: [`CensorDecision::Reset`] (mid-stream teardown) when
/// `teardown` is set, else [`CensorDecision::Block`]. Until then it
/// allows mid-stream and discloses its score only on the final
/// observation.
pub struct StatefulProgram {
    censor: Arc<dyn Censor>,
    warmup: usize,
    hysteresis: usize,
    threshold: f32,
    teardown: bool,
    seen: usize,
    streak: usize,
}

impl CensorProgram for StatefulProgram {
    fn observe(&mut self, wire: &Flow, last: bool) -> CensorDecision {
        self.seen += 1;
        if self.seen <= self.warmup {
            return CensorDecision::Allow;
        }
        let score = self.censor.score(wire);
        if score >= self.threshold {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        if self.streak >= self.hysteresis {
            return if self.teardown {
                CensorDecision::Reset
            } else {
                CensorDecision::Block
            };
        }
        if last {
            CensorDecision::Score(score)
        } else {
            CensorDecision::Allow
        }
    }
}

/// Factory for [`StatefulProgram`]s.
#[derive(Clone)]
pub struct StatefulProgramFactory {
    censor: Arc<dyn Censor>,
    warmup: usize,
    hysteresis: usize,
    threshold: f32,
    teardown: bool,
}

impl StatefulProgramFactory {
    /// A warmup/hysteresis gateway over `censor`: silent for `warmup`
    /// observations, then requiring `hysteresis.max(1)` consecutive
    /// scores ≥ `threshold` before blocking.
    pub fn new(censor: Arc<dyn Censor>, warmup: usize, hysteresis: usize, threshold: f32) -> Self {
        Self {
            censor,
            warmup,
            hysteresis: hysteresis.max(1),
            threshold,
            teardown: false,
        }
    }

    /// Tear connections down ([`CensorDecision::Reset`]) instead of
    /// blocking when the hysteresis streak fills.
    pub fn with_teardown(mut self, teardown: bool) -> Self {
        self.teardown = teardown;
        self
    }
}

impl CensorProgramFactory for StatefulProgramFactory {
    fn spawn(&self) -> Box<dyn CensorProgram> {
        Box::new(StatefulProgram {
            censor: Arc::clone(&self.censor),
            warmup: self.warmup,
            hysteresis: self.hysteresis,
            threshold: self.threshold,
            teardown: self.teardown,
            seen: 0,
            streak: 0,
        })
    }

    fn kind(&self) -> CensorKind {
        self.censor.kind()
    }
}

impl ConstantCensor {
    /// A fixed-score censor reporting as DT — the one-line test censor
    /// the gym and serving unit tests build instead of hand-rolled
    /// structs.
    pub fn new(fixed_score: f32) -> Self {
        Self {
            fixed_score,
            as_kind: CensorKind::Dt,
        }
    }
}

/// [`ConstantCensor`] is its own degenerate program: every observation
/// discloses the fixed score, exactly like routing it through
/// [`ClassifierProgramFactory`] — the single adapter impl the gym and
/// serving unit tests share.
impl CensorProgram for ConstantCensor {
    fn observe(&mut self, _wire: &Flow, _last: bool) -> CensorDecision {
        CensorDecision::Score(self.fixed_score)
    }
}

impl CensorProgramFactory for ConstantCensor {
    fn spawn(&self) -> Box<dyn CensorProgram> {
        Box::new(*self)
    }

    fn kind(&self) -> CensorKind {
        self.as_kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(n: usize) -> Flow {
        Flow::from_pairs(&vec![(100, 1.0); n])
    }

    /// The adapter discloses exactly the wrapped censor's score on every
    /// observation — mid-stream and final alike.
    #[test]
    fn classifier_program_is_degenerate() {
        let censor: Arc<dyn Censor> = Arc::new(ConstantCensor::new(0.7));
        let factory = ClassifierProgramFactory::new(Arc::clone(&censor));
        assert_eq!(factory.kind(), CensorKind::Dt);
        assert!(factory.as_censor().is_some());
        let mut prog = factory.spawn();
        for last in [false, false, true] {
            assert_eq!(prog.observe(&wire(3), last), CensorDecision::Score(0.7));
        }
    }

    #[test]
    fn decision_blocks_matches_censor_threshold() {
        assert!(!CensorDecision::Allow.blocks());
        assert!(!CensorDecision::Score(0.49).blocks());
        assert!(CensorDecision::Score(0.5).blocks());
        assert!(CensorDecision::Block.blocks());
        assert!(CensorDecision::Reset.blocks());
    }

    /// A threshold gateway never discloses a score and only evaluates at
    /// its own cadence (and on the final observation).
    #[test]
    fn threshold_program_is_verdict_only_with_cadence() {
        let hot: Arc<dyn Censor> = Arc::new(ConstantCensor::new(0.9));
        let factory = ThresholdProgramFactory::new(hot, 0.8, 3);
        let mut prog = factory.spawn();
        // Observations 1 and 2 are off-cadence: silent even though the
        // score clears the threshold.
        assert_eq!(prog.observe(&wire(1), false), CensorDecision::Allow);
        assert_eq!(prog.observe(&wire(2), false), CensorDecision::Allow);
        // Observation 3 is due — hard label, no score.
        assert_eq!(prog.observe(&wire(3), false), CensorDecision::Block);
        // A cool censor stays allowed, including on the final frame.
        let cool: Arc<dyn Censor> = Arc::new(ConstantCensor::new(0.3));
        let factory = ThresholdProgramFactory::new(cool, 0.8, 3);
        let mut prog = factory.spawn();
        for i in 1..=4 {
            assert_eq!(prog.observe(&wire(i), i == 4), CensorDecision::Allow);
        }
    }

    /// Satellite pin: warmup suppresses early verdicts — a censor that
    /// would block from frame one stays silent for the whole warmup
    /// window and only acts afterwards.
    #[test]
    fn warmup_suppresses_early_verdicts() {
        let hot: Arc<dyn Censor> = Arc::new(ConstantCensor::new(0.9));
        let factory = StatefulProgramFactory::new(hot, 4, 1, 0.5);
        let mut prog = factory.spawn();
        for i in 1..=4 {
            assert_eq!(
                prog.observe(&wire(i), false),
                CensorDecision::Allow,
                "observation {i} is inside the warmup window"
            );
        }
        assert_eq!(prog.observe(&wire(5), false), CensorDecision::Block);
    }

    /// Satellite pin: hysteresis requires K *consecutive* over-threshold
    /// scores — a single cool score resets the streak.
    #[test]
    fn hysteresis_requires_k_consecutive_scores() {
        // A censor scoring hot except on every 3rd query (`Censor` is
        // `Sync`, so the query counter is an atomic): the streak never
        // reaches 3 until three hot frames line up.
        struct Periodic(std::sync::atomic::AtomicUsize);
        impl Censor for Periodic {
            fn score(&self, _flow: &Flow) -> f32 {
                let n = self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if n % 3 == 2 {
                    0.1
                } else {
                    0.9
                }
            }
            fn kind(&self) -> CensorKind {
                CensorKind::Dt
            }
        }
        let factory =
            StatefulProgramFactory::new(Arc::new(Periodic(Default::default())), 0, 3, 0.5);
        let mut prog = factory.spawn();
        // Scores: 0.9, 0.9, 0.1 (streak resets), 0.9, 0.9, 0.1, ...
        for i in 1..=6 {
            assert_eq!(
                prog.observe(&wire(i), false),
                CensorDecision::Allow,
                "streak must reset at observation 3 and 6"
            );
        }
        // A steadily hot censor blocks exactly at the 3rd consecutive hit.
        let factory = StatefulProgramFactory::new(Arc::new(ConstantCensor::new(0.9)), 0, 3, 0.5);
        let mut prog = factory.spawn();
        assert_eq!(prog.observe(&wire(1), false), CensorDecision::Allow);
        assert_eq!(prog.observe(&wire(2), false), CensorDecision::Allow);
        assert_eq!(prog.observe(&wire(3), false), CensorDecision::Block);
    }

    /// With teardown enabled the filled streak resets the connection
    /// instead of blocking it.
    #[test]
    fn teardown_turns_block_into_reset() {
        let factory = StatefulProgramFactory::new(Arc::new(ConstantCensor::new(0.9)), 1, 2, 0.5)
            .with_teardown(true);
        let mut prog = factory.spawn();
        assert_eq!(prog.observe(&wire(1), false), CensorDecision::Allow); // warmup
        assert_eq!(prog.observe(&wire(2), false), CensorDecision::Allow); // streak 1
        assert_eq!(prog.observe(&wire(3), false), CensorDecision::Reset); // streak 2
    }

    /// Satellite pin: the hard-label wrapper never leaks a score — every
    /// decision it returns is Allow/Block/Reset, with Score mapped
    /// through the 0.5 threshold.
    #[test]
    fn hard_label_wrapper_never_leaks_a_score() {
        for (score, expect) in [
            (0.0, CensorDecision::Allow),
            (0.49, CensorDecision::Allow),
            (0.5, CensorDecision::Block),
            (1.0, CensorDecision::Block),
        ] {
            let factory = HardLabelFactory::over_censor(Arc::new(ConstantCensor::new(score)));
            let mut prog = factory.spawn();
            for last in [false, true] {
                let d = prog.observe(&wire(2), last);
                assert_eq!(d, expect, "score {score}");
                assert!(
                    !matches!(d, CensorDecision::Score(_)),
                    "hard-label programs must never disclose a score"
                );
            }
        }
        // Reset passes through untouched.
        let inner = StatefulProgramFactory::new(Arc::new(ConstantCensor::new(0.9)), 0, 1, 0.5)
            .with_teardown(true);
        let factory = HardLabelFactory::new(Arc::new(inner));
        assert_eq!(factory.kind(), CensorKind::Dt);
        let mut prog = factory.spawn();
        assert_eq!(prog.observe(&wire(1), false), CensorDecision::Reset);
    }

    /// Factories spawn independent state machines: one session's streak
    /// must not bleed into another's.
    #[test]
    fn spawned_programs_are_independent() {
        let factory = StatefulProgramFactory::new(Arc::new(ConstantCensor::new(0.9)), 0, 2, 0.5);
        let mut a = factory.spawn();
        let mut b = factory.spawn();
        assert_eq!(a.observe(&wire(1), false), CensorDecision::Allow);
        // `b` starts from streak 0 even though `a` already has streak 1.
        assert_eq!(b.observe(&wire(1), false), CensorDecision::Allow);
        assert_eq!(a.observe(&wire(2), false), CensorDecision::Block);
        assert_eq!(b.observe(&wire(2), false), CensorDecision::Block);
    }

    /// `ConstantCensor` is its own factory/program — the one-place
    /// adapter the gym unit tests rely on.
    #[test]
    fn constant_censor_is_its_own_program() {
        let c = ConstantCensor::new(0.2);
        assert_eq!(c.as_kind, CensorKind::Dt);
        let mut prog = CensorProgramFactory::spawn(&c);
        assert_eq!(prog.observe(&wire(1), true), CensorDecision::Score(0.2));
    }
}
