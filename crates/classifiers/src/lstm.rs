//! LSTM censor [Rimmer et al., NDSS'18]: a multi-layer recurrent network
//! that consumes flows of *arbitrary length* — the paper highlights this
//! as its advantage for interpreting consecutive packets as time series.
//!
//! Unlike DF/SDAE, the LSTM censor does not pad flows to a fixed length at
//! inference: it runs the recurrence over however many packets the (prefix
//! of the) flow contains.

use rand::Rng;

use amoeba_nn::forward::{Forward, Pipeline};
use amoeba_nn::layers::{Activation, Linear};
use amoeba_nn::matrix::Matrix;
use amoeba_nn::rnn::Lstm;
use amoeba_nn::tensor::Tensor;
use amoeba_traffic::{Flow, FlowRepr};

use crate::censor::{Censor, CensorKind};

/// Architecture for [`LstmModel`].
#[derive(Debug, Clone, Copy)]
pub struct LstmConfig {
    /// Hidden width per layer.
    pub hidden: usize,
    /// Number of stacked layers.
    pub layers: usize,
}

impl Default for LstmConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            layers: 2,
        }
    }
}

/// Trainable LSTM classifier.
pub struct LstmModel {
    lstm: Lstm,
    head: Linear,
    repr: FlowRepr,
}

impl LstmModel {
    /// Builds an untrained LSTM classifier.
    pub fn new<R: Rng + ?Sized>(repr: FlowRepr, config: LstmConfig, rng: &mut R) -> Self {
        let lstm = Lstm::new(FlowRepr::CHANNELS, config.hidden, config.layers, rng);
        let head = Linear::new(config.hidden, 1, rng);
        Self { lstm, head, repr }
    }

    /// Flow representation (used for normalisation constants only; the
    /// sequence length is not fixed).
    pub fn repr(&self) -> FlowRepr {
        self.repr
    }

    /// Autograd forward over one flow (variable length); returns a `(1,1)`
    /// logit.
    pub fn forward_flow(&self, flow: &Flow) -> Tensor {
        let steps = self.repr.to_steps(flow);
        if steps.is_empty() {
            // An empty flow carries no evidence; forward a single zero step.
            let x = vec![Tensor::constant(Matrix::zeros(1, 2))];
            return self.head.forward(&self.lstm.forward_sequence(&x));
        }
        let xs: Vec<Tensor> = steps
            .iter()
            .map(|s| Tensor::constant(Matrix::from_vec(1, 2, s.to_vec())))
            .collect();
        self.head.forward(&self.lstm.forward_sequence(&xs))
    }

    /// Autograd forward over a fixed-length position-major batch
    /// `(B, max_len * 2)` — the interface used by the white-box attacks,
    /// which operate on padded representations.
    pub fn forward_graph(&self, x: &Tensor) -> Tensor {
        let (_, width) = x.shape();
        let steps = width / FlowRepr::CHANNELS;
        let xs: Vec<Tensor> = (0..steps).map(|t| x.slice_cols(t * 2, t * 2 + 2)).collect();
        self.head.forward(&self.lstm.forward_sequence(&xs))
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = self.lstm.params();
        p.extend(self.head.params());
        p
    }

    /// Freezes current weights into a thread-safe censor: the recurrence,
    /// the dense head and the sigmoid squash become one [`Pipeline`].
    pub fn censor(&self) -> LstmCensor {
        LstmCensor {
            net: Pipeline::new()
                .then(self.lstm.snapshot())
                .then(self.head.snapshot())
                .then(Activation::Sigmoid),
            repr: self.repr,
        }
    }
}

/// Inference-only LSTM censor (`Send + Sync`).
#[derive(Clone, Debug)]
pub struct LstmCensor {
    net: Pipeline,
    repr: FlowRepr,
}

impl Censor for LstmCensor {
    fn score(&self, flow: &Flow) -> f32 {
        // One timestep per row, per the recurrent Forward convention; an
        // empty flow contributes a single zero step (no evidence).
        let steps = self.repr.to_steps(flow);
        let x = if steps.is_empty() {
            Matrix::zeros(1, 2)
        } else {
            let mut m = Matrix::zeros(steps.len(), 2);
            for (t, s) in steps.iter().enumerate() {
                m.row_mut(t).copy_from_slice(s);
            }
            m
        };
        self.net.forward(&x)[(0, 0)]
    }

    fn kind(&self) -> CensorKind {
        CensorKind::Lstm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn handles_arbitrary_lengths() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = LstmModel::new(FlowRepr::tcp(), LstmConfig::default(), &mut rng);
        let censor = model.censor();
        for len in [1usize, 3, 20, 150] {
            let pairs: Vec<(i32, f32)> = (0..len)
                .map(|i| (536 * (1 - 2 * (i as i32 % 2)), 1.0))
                .collect();
            let flow = Flow::from_pairs(&pairs);
            let s = censor.score(&flow);
            assert!((0.0..=1.0).contains(&s), "len {len} score {s}");
        }
    }

    #[test]
    fn censor_matches_graph_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = LstmModel::new(FlowRepr::tcp(), LstmConfig::default(), &mut rng);
        let censor = model.censor();
        let flow = Flow::from_pairs(&[(536, 0.0), (-536, 5.0), (-1072, 0.5)]);
        let logit = model.forward_flow(&flow).value()[(0, 0)];
        let expect = 1.0 / (1.0 + (-logit).exp());
        assert!((censor.score(&flow) - expect).abs() < 1e-5);
    }

    #[test]
    fn fixed_length_graph_equals_flow_forward_on_padded_flow() {
        let mut rng = StdRng::seed_from_u64(3);
        let repr = FlowRepr {
            max_len: 4,
            max_size: 1460.0,
            max_delay_ms: 500.0,
        };
        let model = LstmModel::new(repr, LstmConfig::default(), &mut rng);
        // A flow of exactly max_len packets: both paths see identical input.
        let flow = Flow::from_pairs(&[(100, 0.0), (-200, 1.0), (300, 2.0), (-400, 3.0)]);
        let via_flow = model.forward_flow(&flow).value()[(0, 0)];
        let row = repr.to_position_major(&flow);
        let via_graph = model
            .forward_graph(&Tensor::constant(Matrix::from_vec(1, row.len(), row)))
            .value()[(0, 0)];
        assert!((via_flow - via_graph).abs() < 1e-5);
    }

    #[test]
    fn empty_flow_scores_without_panicking() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = LstmModel::new(FlowRepr::tcp(), LstmConfig::default(), &mut rng);
        let s = model.censor().score(&Flow::new());
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn gradients_reach_all_params() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = LstmModel::new(
            FlowRepr::tcp(),
            LstmConfig {
                hidden: 8,
                layers: 2,
            },
            &mut rng,
        );
        let flow = Flow::from_pairs(&[(536, 0.0), (-536, 1.0)]);
        let target = Matrix::from_vec(1, 1, vec![1.0]);
        let loss = model.forward_flow(&flow).bce_with_logits_loss(&target);
        loss.backward();
        let with_grad = model
            .params()
            .iter()
            .filter(|p| p.grad().norm() > 0.0)
            .count();
        // All head params and first-layer LSTM params must receive gradient.
        assert!(
            with_grad >= model.params().len() - 1,
            "{with_grad} params with gradient"
        );
    }
}
