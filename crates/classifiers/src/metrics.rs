//! Classification metrics (§5.3): accuracy and F1 over the positive
//! (sensitive) class, plus the raw confusion matrix.

use amoeba_traffic::{Dataset, Label};

use crate::censor::Censor;

/// Binary confusion matrix with the paper's metric definitions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// True positives (sensitive classified sensitive).
    pub tp: usize,
    /// False positives (benign classified sensitive).
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Metrics {
    /// Accumulates one prediction.
    pub fn record(&mut self, actual_sensitive: bool, predicted_sensitive: bool) {
        match (actual_sensitive, predicted_sensitive) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// `(TP + TN) / total`.
    pub fn accuracy(&self) -> f32 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f32 / self.total() as f32
    }

    /// `TP / (TP + FP)` (0 when undefined).
    pub fn precision(&self) -> f32 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f32 / (self.tp + self.fp) as f32
    }

    /// `TP / (TP + FN)` (0 when undefined).
    pub fn recall(&self) -> f32 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f32 / (self.tp + self.fn_) as f32
    }

    /// Harmonic mean of precision and recall (0 when undefined).
    pub fn f1(&self) -> f32 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc={:.3} f1={:.3} (tp={} fp={} tn={} fn={})",
            self.accuracy(),
            self.f1(),
            self.tp,
            self.fp,
            self.tn,
            self.fn_
        )
    }
}

/// Evaluates a censor on a labelled dataset.
pub fn evaluate(censor: &dyn Censor, dataset: &Dataset) -> Metrics {
    let mut m = Metrics::default();
    for (flow, &label) in dataset.flows.iter().zip(&dataset.labels) {
        m.record(label == Label::Sensitive, censor.blocks(flow));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::censor::{CensorKind, ConstantCensor};
    use amoeba_traffic::Flow;

    #[test]
    fn perfect_classifier_metrics() {
        let mut m = Metrics::default();
        for _ in 0..10 {
            m.record(true, true);
            m.record(false, false);
        }
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn degenerate_all_positive() {
        let mut m = Metrics::default();
        for _ in 0..5 {
            m.record(true, true);
            m.record(false, true);
        }
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.precision(), 0.5);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn known_confusion_values() {
        let mut m = Metrics::default();
        m.record(true, true); // tp
        m.record(true, false); // fn
        m.record(false, true); // fp
        m.record(false, false); // tn
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (1, 1, 1, 1));
        assert_eq!(m.accuracy(), 0.5);
    }

    #[test]
    fn evaluate_against_constant_censor() {
        let mut ds = Dataset::new();
        ds.push(
            Flow::from_pairs(&[(100, 0.0)]),
            amoeba_traffic::Label::Sensitive,
        );
        ds.push(
            Flow::from_pairs(&[(200, 0.0)]),
            amoeba_traffic::Label::Benign,
        );
        let censor = ConstantCensor {
            fixed_score: 1.0,
            as_kind: CensorKind::Dt,
        };
        let m = evaluate(&censor, &ds);
        assert_eq!(m.tp, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.accuracy(), 0.5);
    }
}
