//! Tree-based censors (DT and RF) over the 166-feature representation
//! [Barradas et al., USENIX Security'18].

use amoeba_ml::{DecisionTree, RandomForest};
use amoeba_nn::{Forward, Matrix};
use amoeba_traffic::{extract_features, Flow, Layer};

use crate::censor::{score_row, Censor, CensorKind};

/// Decision-tree censor.
#[derive(Debug, Clone)]
pub struct TreeCensor {
    /// The fitted tree.
    pub tree: DecisionTree,
    /// Observation layer (sets the feature extractor's size normaliser).
    pub layer: Layer,
}

impl Forward for TreeCensor {
    /// Each row of `x` is one 166-feature vector; returns `(B, 1)`
    /// P(sensitive) leaf probabilities.
    fn forward(&self, x: &Matrix) -> Matrix {
        let probs = (0..x.rows())
            .map(|r| self.tree.predict_proba(x.row(r)))
            .collect();
        Matrix::col_vector(probs)
    }
}

impl Censor for TreeCensor {
    fn score(&self, flow: &Flow) -> f32 {
        score_row(self, &extract_features(flow, self.layer))
    }

    fn kind(&self) -> CensorKind {
        CensorKind::Dt
    }
}

/// Random-forest censor.
#[derive(Debug, Clone)]
pub struct ForestCensor {
    /// The fitted forest.
    pub forest: RandomForest,
    /// Observation layer.
    pub layer: Layer,
}

impl Forward for ForestCensor {
    /// Each row of `x` is one 166-feature vector; returns `(B, 1)`
    /// ensemble-averaged P(sensitive).
    fn forward(&self, x: &Matrix) -> Matrix {
        let probs = (0..x.rows())
            .map(|r| self.forest.predict_proba(x.row(r)))
            .collect();
        Matrix::col_vector(probs)
    }
}

impl Censor for ForestCensor {
    fn score(&self, flow: &Flow) -> f32 {
        score_row(self, &extract_features(flow, self.layer))
    }

    fn kind(&self) -> CensorKind {
        CensorKind::Rf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_ml::{ForestConfig, TreeConfig};
    use amoeba_traffic::{build_dataset, DatasetKind, Label};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tree_censor_separates_tor_from_https() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = build_dataset(DatasetKind::Tor, 60, None, 5);
        let x: Vec<Vec<f32>> = ds
            .flows
            .iter()
            .map(|f| extract_features(f, Layer::Tcp))
            .collect();
        let y = ds.labels_u8();
        let tree = DecisionTree::fit(&x, &y, TreeConfig::default(), &mut rng);
        let censor = TreeCensor {
            tree,
            layer: Layer::Tcp,
        };
        let mut correct = 0;
        for (f, &l) in ds.flows.iter().zip(&ds.labels) {
            if censor.blocks(f) == (l == Label::Sensitive) {
                correct += 1;
            }
        }
        assert!(
            correct as f32 / ds.len() as f32 > 0.95,
            "train acc {correct}/{}",
            ds.len()
        );
        assert_eq!(censor.kind(), CensorKind::Dt);
    }

    #[test]
    fn forest_censor_scores_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = build_dataset(DatasetKind::Tor, 30, None, 6);
        let x: Vec<Vec<f32>> = ds
            .flows
            .iter()
            .map(|f| extract_features(f, Layer::Tcp))
            .collect();
        let forest = RandomForest::fit(
            &x,
            &ds.labels_u8(),
            ForestConfig {
                n_trees: 10,
                ..Default::default()
            },
            &mut rng,
        );
        let censor = ForestCensor {
            forest,
            layer: Layer::Tcp,
        };
        for f in &ds.flows {
            let s = censor.score(f);
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(censor.kind(), CensorKind::Rf);
    }
}
