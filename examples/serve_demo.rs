//! The train → freeze → serve lifecycle end to end: train a censor, train
//! a small Amoeba policy against it in the offline gym, freeze the policy,
//! then serve 1 000 concurrent shaped flows through the `amoeba-serve`
//! dataplane with the censor inline — printing evasion rate and
//! throughput.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```
//!
//! `AMOEBA_SERVE_FLOWS` / `AMOEBA_STEPS` bound the run (CI uses the
//! defaults: 1 000 flows, 8 192 PPO timesteps, ~a minute end to end);
//! `AMOEBA_SERVE_SHARDS` sets the dataplane worker-thread count
//! (default 0 = one per core — wire output is shard-count-invariant).

use std::sync::Arc;

use amoeba::classifiers::{evaluate, train_censor, Censor, CensorKind, TrainConfig};
use amoeba::core::{sensitive_flows, train_amoeba, AmoebaConfig};
use amoeba::serve::{Dataplane, FrozenPolicy, ServeConfig, VerdictPolicy};
use amoeba::traffic::{build_dataset, DatasetKind, Flow, Layer};

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_flows = env_or("AMOEBA_SERVE_FLOWS", 1000);
    let steps = env_or("AMOEBA_STEPS", 8_192);

    // --- train: censor, then Amoeba against it (offline gym) -------------
    let splits = build_dataset(DatasetKind::Tor, 250, None, 42).split(42);
    let censor: Arc<dyn Censor> = Arc::new(train_censor(
        CensorKind::Dt,
        &splits.clf_train,
        Layer::Tcp,
        &TrainConfig::fast(),
        1,
    ));
    println!(
        "censor (DT) on raw traffic: {}",
        evaluate(censor.as_ref(), &splits.test)
    );

    let cfg = AmoebaConfig::fast().with_timesteps(steps).with_seed(7);
    let (agent, report) = train_amoeba(
        Arc::clone(&censor),
        &sensitive_flows(&splits.attack_train),
        Layer::Tcp,
        &cfg,
        None,
    );
    println!(
        "trained: {} timesteps, {} censor queries",
        report.total_timesteps(),
        report.total_queries()
    );

    // --- freeze ------------------------------------------------------------
    let policy = FrozenPolicy::from_agent(&agent);

    // --- serve: 1k concurrent flows, censor inline, batched inference -----
    let base = sensitive_flows(&splits.test);
    let offered: Vec<Flow> = (0..n_flows)
        .map(|i| base[i % base.len()].prefix(20))
        .collect();
    let serve_cfg = ServeConfig::from_amoeba(agent.config(), Layer::Tcp)
        .with_batch(64)
        .with_shards(env_or("AMOEBA_SERVE_SHARDS", 0))
        .with_verdicts(VerdictPolicy::Every(8))
        .with_seed(7);
    let mut dp = Dataplane::new(policy, Arc::clone(&censor), serve_cfg);
    dp.add_flows(offered.iter());
    let r = dp.run();

    println!("serve: {}", r.summary());
    assert!(
        r.stream_ok_rate() == 1.0,
        "every session must reassemble its byte streams bit-exact"
    );
    println!(
        "dataplane served {} flows at {:.0} flows/s ({:.2} MB/s payload) \
         with {:.1}% evasion against the inline DT censor",
        r.outcomes.len(),
        r.flows_per_sec(),
        r.payload_mb_per_sec(),
        r.evasion_rate() * 100.0
    );
}
