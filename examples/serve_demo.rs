//! The train → freeze → serve lifecycle end to end, multi-tenant: train
//! two censors (DT and LSTM), train a small Amoeba policy against the DT
//! censor in the offline gym — plus a second policy against a
//! **verdict-only** wrapper of the same DT censor (`HardLabelFactory`:
//! the program answers `Block`/`Allow`, never a score, so PPO learns
//! from binary feedback alone) — freeze both, then serve shaped flows
//! through one `ServeEngine` against three censor tenants concurrently:
//! the DT censor, the LSTM censor, and the hard-label program. The
//! per-tenant sub-reports print the §5.4 cross-censor transfer story
//! and the hard-label threat model from a single dataplane run. The
//! demo ends by printing the run's telemetry snapshot — counters,
//! histogram latency percentiles, per-tenant cells (verdict queries and
//! teardowns included) and flight-recorder occupancy — observability
//! that never moves a wire bit.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```
//!
//! `AMOEBA_SERVE_FLOWS` / `AMOEBA_STEPS` bound the run (CI uses the
//! defaults: ~1 000 sessions — offered flows × 3 censor tenants — and
//! 8 192 PPO timesteps); `AMOEBA_SERVE_SHARDS` sets the engine
//! worker-thread count (default 0 = one per core) and
//! `AMOEBA_SERVE_BACKEND` the inference backend (`cpu` | `simd`) — wire
//! output is shard-count-, tenancy- and backend-invariant.

use std::sync::Arc;

use amoeba::classifiers::{
    evaluate, train_censor, Censor, CensorKind, CensorProgramFactory, HardLabelFactory, TrainConfig,
};
use amoeba::core::{
    pretrain_encoder, sensitive_flows, train_amoeba_with_encoder,
    train_amoeba_with_encoder_program, AmoebaConfig,
};
use amoeba::serve::{FrozenPolicy, ServeConfig, ServeEngine, Tenant, VerdictPolicy};
use amoeba::traffic::{build_dataset, DatasetKind, Flow, Layer};

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_sessions = env_or("AMOEBA_SERVE_FLOWS", 1000);
    let n_flows = n_sessions.div_ceil(3);
    let steps = env_or("AMOEBA_STEPS", 8_192);

    // --- train: two censor families, then Amoeba against the DT one ------
    let splits = build_dataset(DatasetKind::Tor, 250, None, 42).split(42);
    let dt: Arc<dyn Censor> = Arc::new(train_censor(
        CensorKind::Dt,
        &splits.clf_train,
        Layer::Tcp,
        &TrainConfig::fast(),
        1,
    ));
    let lstm: Arc<dyn Censor> = Arc::new(train_censor(
        CensorKind::Lstm,
        &splits.clf_train,
        Layer::Tcp,
        &TrainConfig::fast(),
        1,
    ));
    for (name, censor) in [("DT", &dt), ("LSTM", &lstm)] {
        println!(
            "censor ({name}) on raw traffic: {}",
            evaluate(censor.as_ref(), &splits.test)
        );
    }

    let cfg = AmoebaConfig::fast().with_timesteps(steps).with_seed(7);
    // One Algorithm-2 encoder pretraining feeds both policies — the
    // StateEncoder is censor-independent.
    let (encoder, encoder_loss) = pretrain_encoder(&cfg);
    let train_flows = sensitive_flows(&splits.attack_train);
    let (agent, report) = train_amoeba_with_encoder(
        Arc::clone(&dt),
        &train_flows,
        Layer::Tcp,
        &cfg,
        encoder.clone(),
        encoder_loss,
        None,
    );
    println!(
        "trained vs DT: {} timesteps, {} censor queries",
        report.total_timesteps(),
        report.total_queries()
    );
    // A second policy trained against the *verdict-only* wrapper of the
    // same DT censor: the program answers Block/Allow, never a score, so
    // PPO sees only binary feedback (the hard-label threat model).
    let hard_factory: Arc<dyn CensorProgramFactory> =
        Arc::new(HardLabelFactory::over_censor(Arc::clone(&dt)));
    let (hard_agent, hard_report) = train_amoeba_with_encoder_program(
        Arc::clone(&hard_factory),
        &train_flows,
        Layer::Tcp,
        &cfg,
        encoder,
        encoder_loss,
        None,
    );
    println!(
        "trained vs hard-label DT: {} timesteps, {} censor queries",
        hard_report.total_timesteps(),
        hard_report.total_queries()
    );

    // --- freeze ------------------------------------------------------------
    let policy = FrozenPolicy::from_agent(&agent);
    let hard_policy = FrozenPolicy::from_agent(&hard_agent);

    // --- serve: one engine, one policy, two censor tenants ----------------
    let base = sensitive_flows(&splits.test);
    let offered: Vec<Flow> = (0..n_flows)
        .map(|i| base[i % base.len()].prefix(20))
        .collect();
    let serve_cfg = ServeConfig::builder_from_amoeba(agent.config(), Layer::Tcp)
        .batch(64)
        .shards(env_or("AMOEBA_SERVE_SHARDS", 0))
        .verdicts(VerdictPolicy::Every(8))
        .seed(7)
        // Keep the last 256 stage spans per shard for the trace dump,
        // and the exact per-frame vectors so the per-censor sub-reports
        // below can quote latency percentiles (histograms are engine-wide).
        .trace_ring(256)
        .exact_frame_stats(true)
        .build();
    let mut engine = ServeEngine::new(serve_cfg);
    let p = engine.register_policy(policy);
    let p_hard = engine.register_policy(hard_policy);
    let c_dt = engine.register_censor(Arc::clone(&dt));
    let c_lstm = engine.register_censor(Arc::clone(&lstm));
    let c_hard = engine.register_censor_program(Arc::clone(&hard_factory));
    for flow in &offered {
        engine.admit(flow).policy(p).censor(c_dt).submit();
        engine.admit(flow).policy(p).censor(c_lstm).submit();
        engine.admit(flow).policy(p_hard).censor(c_hard).submit();
    }
    let backend = engine.backend_name();
    // Grab the telemetry handle up front: `run()` consumes the engine,
    // and the handle is populated when the run completes.
    let telemetry = engine.telemetry();
    let r = engine.run();

    println!("serve ({backend} backend): {}", r.summary());
    assert!(
        r.stream_ok_rate() == 1.0,
        "every session must reassemble its byte streams bit-exact"
    );
    let names = [
        (c_dt, "DT (training censor)"),
        (c_lstm, "LSTM (transfer)"),
        (c_hard, "hard-label DT (verdict-only)"),
    ];
    for (tenant, sub) in r.sub_reports() {
        let name = names
            .iter()
            .find(|(c, _)| *c == tenant.censor)
            .map(|(_, n)| *n)
            .unwrap_or("?");
        println!("  vs {name}: {}", sub.summary());
    }
    let hard_sub = r.sub_report(Tenant::new(p_hard, c_hard));
    assert!(
        hard_sub.evasion_rate() > 0.0,
        "the policy trained on binary feedback alone must still evade \
         some sessions against its verdict-only censor"
    );
    println!(
        "hard-label policy evaded {:.1}% of its sessions from binary feedback alone",
        hard_sub.evasion_rate() * 100.0
    );
    println!(
        "one engine served {} sessions ({} offered flows x 3 censor tenants) at \
         {:.0} flows/s ({:.2} MB/s payload)",
        r.outcomes.len(),
        offered.len(),
        r.flows_per_sec(),
        r.payload_mb_per_sec()
    );

    // --- observe: the telemetry snapshot that rode along -------------------
    let snap = telemetry.get().expect("telemetry is on by default");
    println!(
        "telemetry: {} ticks, {} batches ({} stolen), {} absorbs ({} out of order), \
         latency p50 {:.0}µs p99 {:.0}µs from log-linear histograms, {} trace events \
         ({} dropped by the ring)",
        snap.counters.ticks,
        snap.counters.batches,
        snap.counters.stolen_batches,
        snap.counters.absorbs,
        snap.counters.absorbs_out_of_order,
        snap.latency_hist.quantile_us(0.5),
        snap.latency_hist.quantile_us(0.99),
        snap.events.len(),
        snap.dropped_events,
    );
    for (key, cell) in &snap.tenants {
        println!(
            "  tenant (policy {}, censor {}): {} frames, {} verdicts from {} queries, \
             {}/{} sessions evaded, {} torn down",
            key.policy,
            key.censor,
            cell.frames,
            cell.verdicts,
            cell.verdict_queries,
            cell.evasions,
            cell.sessions,
            cell.teardowns
        );
    }
}
