//! The train → freeze → serve lifecycle end to end, multi-tenant: train
//! two censors (DT and LSTM), train a small Amoeba policy against the DT
//! censor in the offline gym, freeze the policy, then serve shaped flows
//! through one `ServeEngine` against **both** censors concurrently — the
//! same policy registered once, each offered flow admitted twice (once
//! per censor tenant), batched inference fused across both tenants. The
//! per-censor sub-reports print the §5.4 cross-censor transfer story
//! (policy trained vs DT, evaluated vs DT *and* LSTM) from a single
//! dataplane run. The demo ends by printing the run's telemetry
//! snapshot — counters, histogram latency percentiles, per-tenant
//! cells and flight-recorder occupancy — observability that never
//! moves a wire bit.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```
//!
//! `AMOEBA_SERVE_FLOWS` / `AMOEBA_STEPS` bound the run (CI uses the
//! defaults: 1 000 sessions — 500 offered flows × 2 censors — and 8 192
//! PPO timesteps); `AMOEBA_SERVE_SHARDS` sets the engine worker-thread
//! count (default 0 = one per core) and `AMOEBA_SERVE_BACKEND` the
//! inference backend (`cpu` | `simd`) — wire output is shard-count-,
//! tenancy- and backend-invariant.

use std::sync::Arc;

use amoeba::classifiers::{evaluate, train_censor, Censor, CensorKind, TrainConfig};
use amoeba::core::{sensitive_flows, train_amoeba, AmoebaConfig};
use amoeba::serve::{FrozenPolicy, ServeConfig, ServeEngine, VerdictPolicy};
use amoeba::traffic::{build_dataset, DatasetKind, Flow, Layer};

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_sessions = env_or("AMOEBA_SERVE_FLOWS", 1000);
    let n_flows = n_sessions.div_ceil(2);
    let steps = env_or("AMOEBA_STEPS", 8_192);

    // --- train: two censor families, then Amoeba against the DT one ------
    let splits = build_dataset(DatasetKind::Tor, 250, None, 42).split(42);
    let dt: Arc<dyn Censor> = Arc::new(train_censor(
        CensorKind::Dt,
        &splits.clf_train,
        Layer::Tcp,
        &TrainConfig::fast(),
        1,
    ));
    let lstm: Arc<dyn Censor> = Arc::new(train_censor(
        CensorKind::Lstm,
        &splits.clf_train,
        Layer::Tcp,
        &TrainConfig::fast(),
        1,
    ));
    for (name, censor) in [("DT", &dt), ("LSTM", &lstm)] {
        println!(
            "censor ({name}) on raw traffic: {}",
            evaluate(censor.as_ref(), &splits.test)
        );
    }

    let cfg = AmoebaConfig::fast().with_timesteps(steps).with_seed(7);
    let (agent, report) = train_amoeba(
        Arc::clone(&dt),
        &sensitive_flows(&splits.attack_train),
        Layer::Tcp,
        &cfg,
        None,
    );
    println!(
        "trained vs DT: {} timesteps, {} censor queries",
        report.total_timesteps(),
        report.total_queries()
    );

    // --- freeze ------------------------------------------------------------
    let policy = FrozenPolicy::from_agent(&agent);

    // --- serve: one engine, one policy, two censor tenants ----------------
    let base = sensitive_flows(&splits.test);
    let offered: Vec<Flow> = (0..n_flows)
        .map(|i| base[i % base.len()].prefix(20))
        .collect();
    let serve_cfg = ServeConfig::builder_from_amoeba(agent.config(), Layer::Tcp)
        .batch(64)
        .shards(env_or("AMOEBA_SERVE_SHARDS", 0))
        .verdicts(VerdictPolicy::Every(8))
        .seed(7)
        // Keep the last 256 stage spans per shard for the trace dump,
        // and the exact per-frame vectors so the per-censor sub-reports
        // below can quote latency percentiles (histograms are engine-wide).
        .trace_ring(256)
        .exact_frame_stats(true)
        .build();
    let mut engine = ServeEngine::new(serve_cfg);
    let p = engine.register_policy(policy);
    let c_dt = engine.register_censor(Arc::clone(&dt));
    let c_lstm = engine.register_censor(Arc::clone(&lstm));
    for flow in &offered {
        engine.admit(flow).policy(p).censor(c_dt).submit();
        engine.admit(flow).policy(p).censor(c_lstm).submit();
    }
    let backend = engine.backend_name();
    // Grab the telemetry handle up front: `run()` consumes the engine,
    // and the handle is populated when the run completes.
    let telemetry = engine.telemetry();
    let r = engine.run();

    println!("serve ({backend} backend): {}", r.summary());
    assert!(
        r.stream_ok_rate() == 1.0,
        "every session must reassemble its byte streams bit-exact"
    );
    let names = [(c_dt, "DT (training censor)"), (c_lstm, "LSTM (transfer)")];
    for (tenant, sub) in r.sub_reports() {
        let name = names
            .iter()
            .find(|(c, _)| *c == tenant.censor)
            .map(|(_, n)| *n)
            .unwrap_or("?");
        println!("  vs {name}: {}", sub.summary());
    }
    println!(
        "one engine served {} sessions ({} offered flows x 2 censors) at {:.0} flows/s \
         ({:.2} MB/s payload)",
        r.outcomes.len(),
        offered.len(),
        r.flows_per_sec(),
        r.payload_mb_per_sec()
    );

    // --- observe: the telemetry snapshot that rode along -------------------
    let snap = telemetry.get().expect("telemetry is on by default");
    println!(
        "telemetry: {} ticks, {} batches ({} stolen), {} absorbs ({} out of order), \
         latency p50 {:.0}µs p99 {:.0}µs from log-linear histograms, {} trace events \
         ({} dropped by the ring)",
        snap.counters.ticks,
        snap.counters.batches,
        snap.counters.stolen_batches,
        snap.counters.absorbs,
        snap.counters.absorbs_out_of_order,
        snap.latency_hist.quantile_us(0.5),
        snap.latency_hist.quantile_us(0.99),
        snap.events.len(),
        snap.dropped_events,
    );
    for (key, cell) in &snap.tenants {
        println!(
            "  tenant (policy {}, censor {}): {} frames, {} verdicts, {}/{} sessions evaded",
            key.policy, key.censor, cell.frames, cell.verdicts, cell.evasions, cell.sessions
        );
    }
}
