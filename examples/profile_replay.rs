//! The §5.6.1 deployment mode: pre-generate adversarial flow profiles,
//! serialise the database as both proxies would, then embed a live
//! tunnelled flow's payload into the profiles — including the shaper
//! framing that lets the receiving proxy reconstruct the byte stream.
//!
//! ```sh
//! cargo run --release --example profile_replay
//! ```

use std::sync::Arc;

use amoeba::classifiers::{train_censor, Censor, CensorKind, TrainConfig};
use amoeba::core::{
    sensitive_flows, train_amoeba, AmoebaConfig, ProfileStore, ShapedReceiver, ShapedSender,
    HEADER_LEN,
};
use amoeba::traffic::{build_dataset, DatasetKind, Direction, Layer};

fn main() {
    let splits = build_dataset(DatasetKind::Tor, 250, None, 42).split(42);
    let censor: Arc<dyn Censor> = Arc::new(train_censor(
        CensorKind::Rf,
        &splits.clf_train,
        Layer::Tcp,
        &TrainConfig::fast(),
        1,
    ));
    let cfg = AmoebaConfig::fast().with_timesteps(20_000).with_seed(11);
    let (agent, _) = train_amoeba(
        Arc::clone(&censor),
        &sensitive_flows(&splits.attack_train),
        Layer::Tcp,
        &cfg,
        None,
    );

    // 1. Bank successful adversarial shapes from the training set.
    let train_flows = sensitive_flows(&splits.attack_train);
    let profiles: Vec<_> = train_flows
        .iter()
        .take(60)
        .map(|f| agent.attack_flow(&censor, f))
        .filter(|o| o.success)
        .map(|o| o.adversarial)
        .collect();
    println!("banked {} successful adversarial profiles", profiles.len());
    let store = ProfileStore::from_flows(profiles.iter());

    // 2. Ship the database to the peer proxy (binary codec round-trip).
    let wire = store.serialize();
    let synced = ProfileStore::deserialize(&wire).expect("database round-trip");
    println!(
        "profile database: {} bytes for {} profiles",
        wire.len(),
        synced.len()
    );

    // 3. Embed live flows into profiles; measure Table 2-style overheads.
    let test_flows = sensitive_flows(&splits.test);
    let mut data = 0.0;
    let mut time = 0.0;
    let mut evaded = 0usize;
    for (i, flow) in test_flows.iter().enumerate() {
        let result = synced.embed(flow, 60.0, i);
        data += result.data_overhead();
        time += result.time_overhead();
        // The wire flows ARE the stored profiles, so the censor sees
        // exactly what it already failed to block.
        if result.wire_flows.iter().all(|w| !censor.blocks(w)) {
            evaded += 1;
        }
    }
    let n = test_flows.len() as f32;
    println!(
        "profile replay over {} test flows: ASR {:.1}%  DO {:.1}%  TO {:.1}%",
        test_flows.len(),
        evaded as f32 / n * 100.0,
        data / n * 100.0,
        time / n * 100.0
    );

    // 4. Frame an actual byte stream into one profile's packet sizes and
    //    reassemble it on the other side.
    let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
    let mut tx = ShapedSender::new(payload.clone());
    let mut rx = ShapedReceiver::new();
    let profile = &synced.profiles()[0];
    let mut frames = 0;
    'outer: loop {
        for pkt in &profile.packets {
            if pkt.direction() != Direction::Outbound {
                continue; // the peer fills inbound slots
            }
            let wire_size = (pkt.magnitude() as usize).max(HEADER_LEN);
            rx.push_frame(&tx.next_frame(wire_size))
                .expect("valid frame");
            frames += 1;
            if tx.finished() {
                break 'outer;
            }
        }
    }
    assert_eq!(rx.into_payload(), payload);
    println!(
        "shaper: {} B payload reassembled exactly from {frames} outbound frames",
        payload.len()
    );
}
