//! Transferability (§5.5.4): train Amoeba against one censor, then replay
//! its adversarial flows against the others without retraining — the
//! Figure 10 experiment in miniature.
//!
//! ```sh
//! cargo run --release --example transfer_attack
//! ```

use std::sync::Arc;

use amoeba::classifiers::{train_censor, Censor, CensorKind, TrainConfig};
use amoeba::core::{asr_against, sensitive_flows, train_amoeba, AmoebaConfig};
use amoeba::traffic::{build_dataset, DatasetKind, Layer};

fn main() {
    let splits = build_dataset(DatasetKind::Tor, 250, None, 42).split(42);
    let kinds = [CensorKind::Dt, CensorKind::Rf, CensorKind::Cumul];
    let censors: Vec<(CensorKind, Arc<dyn Censor>)> = kinds
        .iter()
        .map(|&k| {
            let c: Arc<dyn Censor> = Arc::new(train_censor(
                k,
                &splits.clf_train,
                Layer::Tcp,
                &TrainConfig::fast(),
                1,
            ));
            (k, c)
        })
        .collect();

    let attack_flows = sensitive_flows(&splits.attack_train);
    let test_flows = sensitive_flows(&splits.test);

    println!("source -> target ASR matrix (%):");
    print!("{:>8}", "");
    for (k, _) in &censors {
        print!("{:>8}", k.name());
    }
    println!();
    for (source_kind, source) in &censors {
        let cfg = AmoebaConfig::fast().with_timesteps(20_000).with_seed(13);
        let (agent, _) = train_amoeba(Arc::clone(source), &attack_flows, Layer::Tcp, &cfg, None);
        let adversarial = agent.generate_adversarial(source, &test_flows);
        print!("{:>8}", source_kind.name());
        for (_, target) in &censors {
            print!("{:>8.1}", asr_against(target, &adversarial) * 100.0);
        }
        println!();
    }
    println!("\nexpect: strong diagonal; DT<->RF transfer well (similar decision\nboundaries over the same 166 features), CUMUL less so.");
}
