//! Tor-over-TCP evasion against the hardest censor in the paper — the DF
//! convolutional network — with convergence tracking (the Figure 7 view).
//!
//! ```sh
//! cargo run --release --example tor_evasion [timesteps]
//! ```

use std::sync::Arc;

use amoeba::classifiers::{evaluate, train_censor, Censor, CensorKind, TrainConfig};
use amoeba::core::{sensitive_flows, train_amoeba, AmoebaConfig};
use amoeba::traffic::{build_dataset, DatasetKind, Layer, NetEm};

fn main() {
    let timesteps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);

    // Collect traffic through a mildly lossy path, as the paper does.
    let splits = build_dataset(DatasetKind::Tor, 300, Some(NetEm::default()), 42).split(42);
    let censor: Arc<dyn Censor> = Arc::new(train_censor(
        CensorKind::Df,
        &splits.clf_train,
        Layer::Tcp,
        &TrainConfig::fast(),
        1,
    ));
    println!("DF censor: {}", evaluate(censor.as_ref(), &splits.test));

    let attack_flows = sensitive_flows(&splits.attack_train);
    let eval_flows = sensitive_flows(&splits.test);
    let cfg = AmoebaConfig::fast().with_timesteps(timesteps).with_seed(3);
    let iterations = timesteps / (cfg.n_envs * cfg.rollout_len);
    let every = (iterations / 8).max(1);

    let (agent, report) = train_amoeba(
        Arc::clone(&censor),
        &attack_flows,
        Layer::Tcp,
        &cfg,
        Some((&eval_flows[..eval_flows.len().min(15)], every)),
    );

    println!("convergence (queries -> test ASR):");
    for it in &report.iterations {
        if let Some(asr) = it.eval_asr {
            println!(
                "  {:>8} queries  ASR {:>5.1}%  reward {:+.3}",
                it.queries,
                asr * 100.0,
                it.mean_reward
            );
        }
    }

    let eval = agent.evaluate(&censor, &eval_flows);
    let (trunc, pad, delay) = eval.mean_action_counts();
    println!(
        "final: ASR {:.1}% DO {:.1}% TO {:.1}% | actions/flow: {trunc:.1} truncations, {pad:.1} paddings, {delay:.1} delays",
        eval.asr() * 100.0,
        eval.data_overhead() * 100.0,
        eval.time_overhead() * 100.0
    );
}
