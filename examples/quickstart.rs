//! Quickstart: train a censoring classifier, train Amoeba against it as a
//! black box, and measure the attack success rate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use amoeba::classifiers::{evaluate, train_censor, Censor, CensorKind, TrainConfig};
use amoeba::core::{sensitive_flows, train_amoeba, AmoebaConfig};
use amoeba::traffic::{build_dataset, DatasetKind, Layer};

fn main() {
    // 1. A synthetic "Tor vs HTTPS" dataset, split 40/40/10/10 (§5.4).
    let splits = build_dataset(DatasetKind::Tor, 300, None, 42).split(42);

    // 2. The censor trains a random forest on its own 40% split.
    let censor: Arc<dyn Censor> = Arc::new(train_censor(
        CensorKind::Rf,
        &splits.clf_train,
        Layer::Tcp,
        &TrainConfig::fast(),
        1,
    ));
    let metrics = evaluate(censor.as_ref(), &splits.test);
    println!("censor (RF) on raw traffic: {metrics}");

    // 3. The attacker trains Amoeba on a disjoint split, observing only
    //    the censor's allow/block decisions.
    let attack_flows = sensitive_flows(&splits.attack_train);
    let cfg = AmoebaConfig::fast().with_timesteps(20_000).with_seed(7);
    let (agent, report) = train_amoeba(Arc::clone(&censor), &attack_flows, Layer::Tcp, &cfg, None);
    println!(
        "trained: {} timesteps, {} censor queries, encoder loss {:.3}",
        report.total_timesteps(),
        report.total_queries(),
        report.encoder_loss
    );

    // 4. Evaluate on unseen test flows.
    let test_flows = sensitive_flows(&splits.test);
    let eval = agent.evaluate(&censor, &test_flows);
    println!(
        "Amoeba vs RF: ASR {:.1}%  data overhead {:.1}%  time overhead {:.1}%",
        eval.asr() * 100.0,
        eval.data_overhead() * 100.0,
        eval.time_overhead() * 100.0
    );

    // 5. Every adversarial flow still carries the full original payload.
    let outcome = agent.attack_flow(&censor, &test_flows[0]);
    println!(
        "payload: original {} B -> adversarial {} B across {} packets (was {})",
        test_flows[0].total_bytes(),
        outcome.adversarial.total_bytes(),
        outcome.adversarial.len(),
        test_flows[0].len()
    );
}
