//! V2Ray (TLS-in-TLS) evasion at the TLS-record layer, where the action
//! space is 16 KB records and the censor is a tree-based model over 166
//! hand-crafted flow features.
//!
//! ```sh
//! cargo run --release --example v2ray_evasion
//! ```

use std::sync::Arc;

use amoeba::classifiers::{evaluate, train_censor, Censor, CensorKind, TrainConfig};
use amoeba::core::{sensitive_flows, train_amoeba, AmoebaConfig};
use amoeba::traffic::{build_dataset, DatasetKind, Layer};

fn main() {
    let splits = build_dataset(DatasetKind::V2Ray, 300, None, 42).split(42);

    for kind in [CensorKind::Dt, CensorKind::Rf, CensorKind::Cumul] {
        let censor: Arc<dyn Censor> = Arc::new(train_censor(
            kind,
            &splits.clf_train,
            Layer::TlsRecord,
            &TrainConfig::fast(),
            1,
        ));
        let m = evaluate(censor.as_ref(), &splits.test);

        // λ_data = 2.0 for the TLS layer per Table 3.
        let cfg = AmoebaConfig::fast()
            .with_layer(Layer::TlsRecord)
            .with_timesteps(30_000)
            .with_seed(5);
        let (agent, _) = train_amoeba(
            Arc::clone(&censor),
            &sensitive_flows(&splits.attack_train),
            Layer::TlsRecord,
            &cfg,
            None,
        );
        let eval = agent.evaluate(&censor, &sensitive_flows(&splits.test));
        println!(
            "{kind:>6}: censor F1 {:.2} | Amoeba ASR {:.1}% DO {:.1}% TO {:.1}%",
            m.f1(),
            eval.asr() * 100.0,
            eval.data_overhead() * 100.0,
            eval.time_overhead() * 100.0
        );
    }
}
